//! BLAS-1 style vector kernels.
//!
//! The conjugate gradient iteration (Algorithm 1 of the paper) is built
//! almost entirely from these operations. They are written as plain indexed
//! loops over equal-length slices, which LLVM auto-vectorizes; the explicit
//! `assert_eq!` length checks hoist the bounds checks out of the loops.
//!
//! The paper's central performance observation — that the two *inner
//! products* per CG iteration are the expensive part on both vector machines
//! and processor arrays — is modelled in `mspcg-machine`; here we provide
//! the numerically careful reference kernels *and* their data-parallel
//! forms.
//!
//! ## Determinism contract
//!
//! Every reduction (dot, norms) is computed over the fixed chunk layout of
//! [`crate::par::reduction_layout`]: one partial per chunk, partials
//! combined in ascending chunk order. Chunk boundaries depend only on the
//! vector length, so results are **bitwise identical** across thread counts
//! and between the serial and parallel code paths. Elementwise kernels
//! (axpy, xpby, …) write disjoint chunks and are trivially deterministic.
//! Large inputs run on the `mspcg-sparse` worker pool (behind the `par`
//! feature); small inputs take the serial path (see
//! [`crate::tuning::par_min_elems`]).

use crate::par;
use crate::tuning;

/// Serial dot kernel over one chunk: four independent partial accumulators,
/// which both enables vectorization and reduces the rounding error compared
/// to a single serial accumulator.
#[inline]
fn dot_chunk(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// Dot product `xᵀy`, chunk-deterministic (see the module docs).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let n = x.len();
    let (chunk, nchunks) = par::reduction_layout(n);
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        let mut acc = 0.0;
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            acc += dot_chunk(&x[lo..hi], &y[lo..hi]);
        }
        return acc;
    }
    let mut partials = [0.0f64; par::MAX_PARTIALS];
    {
        let ps = par::ParSlice::new(&mut partials);
        par::for_each_chunk(nchunks, threads, &|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            // SAFETY: each chunk index is claimed exactly once.
            unsafe { ps.set(c, dot_chunk(&x[lo..hi], &y[lo..hi])) };
        });
    }
    let mut acc = 0.0;
    for &p in &partials[..nchunks] {
        acc += p;
    }
    acc
}

/// Distribute an elementwise update over the fixed chunk layout.
#[inline]
fn elementwise(n: usize, y: &mut [f64], body: impl Fn(usize, usize, &mut [f64]) + Sync) {
    let threads = par::threads_for(n, tuning::par_min_elems());
    let (chunk, nchunks) = par::reduction_layout(n);
    if threads <= 1 {
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            body(lo, hi, &mut y[lo..hi]);
        }
        return;
    }
    let ys = par::ParSlice::new(y);
    par::for_each_chunk(nchunks, threads, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: chunks are disjoint and each claimed exactly once.
        let yc = unsafe { ys.slice_mut(lo..hi) };
        body(lo, hi, yc);
    });
}

/// `y ← y + a·x` (the classic AXPY).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    elementwise(x.len(), y, |lo, hi, yc| {
        for (yi, xi) in yc.iter_mut().zip(&x[lo..hi]) {
            *yi += a * xi;
        }
    });
}

/// `y ← x + b·y` (scale-and-add used by the CG direction update
/// `p ← r̂ + β p`).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    elementwise(x.len(), y, |lo, hi, yc| {
        for (yi, xi) in yc.iter_mut().zip(&x[lo..hi]) {
            *yi = xi + b * *yi;
        }
    });
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    elementwise(x.len(), x, |_, _, xc| {
        for xi in xc.iter_mut() {
            *xi *= a;
        }
    });
}

/// Copy `src` into `dst`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Set every element to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    x.fill(0.0);
}

/// Max-style chunk-deterministic reduction shared by the ∞-norm kernels.
#[inline]
fn max_reduce(n: usize, chunk_max: impl Fn(usize, usize) -> f64 + Sync) -> f64 {
    let (chunk, nchunks) = par::reduction_layout(n);
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        let mut m = 0.0f64;
        for c in 0..nchunks {
            let v = chunk_max(c * chunk, (c * chunk + chunk).min(n));
            if v > m {
                m = v;
            }
        }
        return m;
    }
    let mut partials = [0.0f64; par::MAX_PARTIALS];
    {
        let ps = par::ParSlice::new(&mut partials);
        par::for_each_chunk(nchunks, threads, &|c| {
            // SAFETY: each chunk index is claimed exactly once.
            unsafe { ps.set(c, chunk_max(c * chunk, (c * chunk + chunk).min(n))) };
        });
    }
    let mut m = 0.0f64;
    for &v in &partials[..nchunks] {
        if v > m {
            m = v;
        }
    }
    m
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow for very
/// large components.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_with_max(x, norm_inf(x))
}

/// The scaled-sum pass of [`norm2`] with the `‖x‖∞` pass already done —
/// callers that obtained `maxabs` from a fused kernel (see
/// [`fused_axpy_axpy_norm`]) skip one full sweep over `x`. Bitwise
/// identical to `norm2(x)` whenever `maxabs == norm_inf(x)`.
#[inline]
pub fn norm2_with_max(x: &[f64], maxabs: f64) -> f64 {
    if maxabs == 0.0 || !maxabs.is_finite() {
        return maxabs;
    }
    let inv = 1.0 / maxabs;
    let n = x.len();
    let (chunk, nchunks) = par::reduction_layout(n);
    let sq_chunk = |lo: usize, hi: usize| -> f64 {
        let mut s = 0.0;
        for &xi in &x[lo..hi] {
            let t = xi * inv;
            s += t * t;
        }
        s
    };
    let threads = par::threads_for(n, tuning::par_min_elems());
    let mut s = 0.0;
    if threads <= 1 {
        for c in 0..nchunks {
            s += sq_chunk(c * chunk, (c * chunk + chunk).min(n));
        }
    } else {
        let mut partials = [0.0f64; par::MAX_PARTIALS];
        {
            let ps = par::ParSlice::new(&mut partials);
            par::for_each_chunk(nchunks, threads, &|c| {
                // SAFETY: each chunk index is claimed exactly once.
                unsafe { ps.set(c, sq_chunk(c * chunk, (c * chunk + chunk).min(n))) };
            });
        }
        for &p in &partials[..nchunks] {
            s += p;
        }
    }
    maxabs * s.sqrt()
}

/// Max norm `‖x‖∞` — the norm the paper's convergence test uses
/// (`|u^{k+1} − u^k|_∞ < ε`, Algorithm 1 step (3)).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    max_reduce(x.len(), |lo, hi| {
        let mut m = 0.0f64;
        for &xi in &x[lo..hi] {
            let a = xi.abs();
            if a > m {
                m = a;
            }
        }
        m
    })
}

/// `‖x − y‖∞` without forming the difference vector; used by the
/// displacement-change stopping test.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    max_reduce(x.len(), |lo, hi| {
        let mut m = 0.0f64;
        for (xi, yi) in x[lo..hi].iter().zip(&y[lo..hi]) {
            let a = (xi - yi).abs();
            if a > m {
                m = a;
            }
        }
        m
    })
}

/// Elementwise product `z ← x ⊙ y` (used by diagonal scaling).
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn hadamard(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "hadamard: length mismatch");
    assert_eq!(x.len(), z.len(), "hadamard: output length mismatch");
    elementwise(x.len(), z, |lo, hi, zc| {
        for ((zi, xi), yi) in zc.iter_mut().zip(&x[lo..hi]).zip(&y[lo..hi]) {
            *zi = xi * yi;
        }
    });
}

/// `z ← x − y`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn sub(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    assert_eq!(x.len(), z.len(), "sub: output length mismatch");
    elementwise(x.len(), z, |lo, hi, zc| {
        for ((zi, xi), yi) in zc.iter_mut().zip(&x[lo..hi]).zip(&y[lo..hi]) {
            *zi = xi - yi;
        }
    });
}

/// Reduction partials of [`fused_axpy_axpy_norm`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FusedUpdateNorms {
    /// `‖p‖∞` of the (unchanged) direction vector — multiply by `|α|` for
    /// the displacement-change stopping test.
    pub p_norm_inf: f64,
    /// `‖r‖∞` of the **updated** residual — feed [`norm2_with_max`] for
    /// the relative-residual test without another full sweep.
    pub r_norm_inf: f64,
}

impl FusedUpdateNorms {
    /// Both norms are finite. Note the caveat of [`norm_inf`]: `f64::max`
    /// ignores NaN operands, so a NaN element can hide behind a larger
    /// finite one — an `Inf` always surfaces, but NaN detection must rely
    /// on the dot-product scalars of the same iteration (where one NaN
    /// poisons the whole sum).
    pub fn all_finite(&self) -> bool {
        self.p_norm_inf.is_finite() && self.r_norm_inf.is_finite()
    }
}

/// One chunk of the fused CG update: `u ← u + α·p`, `r ← r + (−α)·kp`,
/// returning `(max|p|, max|r_new|)` for the chunk. The per-element
/// arithmetic and max logic replicate [`axpy`] and [`norm_inf`] exactly.
#[inline]
fn fused_update_chunk(
    alpha: f64,
    p: &[f64],
    kp: &[f64],
    u: &mut [f64],
    r: &mut [f64],
) -> (f64, f64) {
    let mut max_p = 0.0f64;
    for (ui, pi) in u.iter_mut().zip(p) {
        *ui += alpha * pi;
        let a = pi.abs();
        if a > max_p {
            max_p = a;
        }
    }
    let neg_alpha = -alpha;
    let mut max_r = 0.0f64;
    for (ri, ki) in r.iter_mut().zip(kp) {
        *ri += neg_alpha * ki;
        let a = ri.abs();
        if a > max_r {
            max_r = a;
        }
    }
    (max_p, max_r)
}

/// The fused CG iteration update: in **one pass** over the fixed chunk
/// layout, perform `u ← u + α·p` and `r ← r − α·kp` and accumulate the
/// `‖p‖∞` / `‖r_new‖∞` reduction partials. Replaces the three to four
/// separate sweeps (`axpy`, `norm_inf`, `axpy`, and the `norm_inf` half of
/// [`norm2`]) of the unfused loop — one memory traversal and, on the
/// worker pool, one kernel launch instead of three.
///
/// **Bitwise identical to the unfused path** for any thread count: chunk
/// boundaries come from the same [`crate::par::reduction_layout`], the
/// per-element update arithmetic matches [`axpy`], and the max reductions
/// combine per-chunk partials in ascending chunk order exactly like
/// [`norm_inf`] (`tests/par_determinism.rs` asserts this).
///
/// # Panics
/// Panics if the four slices differ in length.
pub fn fused_axpy_axpy_norm(
    alpha: f64,
    p: &[f64],
    kp: &[f64],
    u: &mut [f64],
    r: &mut [f64],
) -> FusedUpdateNorms {
    let n = p.len();
    assert_eq!(kp.len(), n, "fused_axpy_axpy_norm: kp length mismatch");
    assert_eq!(u.len(), n, "fused_axpy_axpy_norm: u length mismatch");
    assert_eq!(r.len(), n, "fused_axpy_axpy_norm: r length mismatch");
    let (chunk, nchunks) = par::reduction_layout(n);
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        let mut out = FusedUpdateNorms::default();
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let (mp, mr) = fused_update_chunk(
                alpha,
                &p[lo..hi],
                &kp[lo..hi],
                &mut u[lo..hi],
                &mut r[lo..hi],
            );
            if mp > out.p_norm_inf {
                out.p_norm_inf = mp;
            }
            if mr > out.r_norm_inf {
                out.r_norm_inf = mr;
            }
        }
        return out;
    }
    let mut p_partials = [0.0f64; par::MAX_PARTIALS];
    let mut r_partials = [0.0f64; par::MAX_PARTIALS];
    {
        let us = par::ParSlice::new(u);
        let rs = par::ParSlice::new(r);
        let pps = par::ParSlice::new(&mut p_partials);
        let rps = par::ParSlice::new(&mut r_partials);
        par::for_each_chunk(nchunks, threads, &|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            // SAFETY: chunks are disjoint and each claimed exactly once;
            // partial slot `c` is written only by this chunk.
            unsafe {
                let uc = us.slice_mut(lo..hi);
                let rc = rs.slice_mut(lo..hi);
                let (mp, mr) = fused_update_chunk(alpha, &p[lo..hi], &kp[lo..hi], uc, rc);
                pps.set(c, mp);
                rps.set(c, mr);
            }
        });
    }
    let mut out = FusedUpdateNorms::default();
    for c in 0..nchunks {
        if p_partials[c] > out.p_norm_inf {
            out.p_norm_inf = p_partials[c];
        }
        if r_partials[c] > out.r_norm_inf {
            out.r_norm_inf = r_partials[c];
        }
    }
    out
}

/// Fused direction update + inner product: `y ← x + b·y`, returning
/// `yᵀw` of the **updated** `y` — one pass instead of an [`xpby`] sweep
/// followed by a [`dot`] sweep. With `b == 0.0` the update is an exact
/// copy (`y ← x`), so stale or non-finite values in `y` cannot leak
/// through a `0·y` product — this is the PCG initialization
/// `p⁰ ← r̂⁰, (r̂⁰, r⁰)` path.
///
/// Chunk deterministic and bitwise identical to the unfused
/// `xpby(x, b, y); dot(y, w)` sequence (same layout, same per-chunk dot
/// kernel, partials combined in ascending chunk order).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn fused_xpby_dot(x: &[f64], b: f64, y: &mut [f64], w: &[f64]) -> f64 {
    let n = x.len();
    assert_eq!(y.len(), n, "fused_xpby_dot: y length mismatch");
    assert_eq!(w.len(), n, "fused_xpby_dot: w length mismatch");
    let (chunk, nchunks) = par::reduction_layout(n);
    let update = |lo: usize, hi: usize, yc: &mut [f64]| {
        if b == 0.0 {
            yc.copy_from_slice(&x[lo..hi]);
        } else {
            for (yi, xi) in yc.iter_mut().zip(&x[lo..hi]) {
                *yi = xi + b * *yi;
            }
        }
    };
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        let mut acc = 0.0;
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            update(lo, hi, &mut y[lo..hi]);
            acc += dot_chunk(&y[lo..hi], &w[lo..hi]);
        }
        return acc;
    }
    let mut partials = [0.0f64; par::MAX_PARTIALS];
    {
        let ys = par::ParSlice::new(y);
        let ps = par::ParSlice::new(&mut partials);
        par::for_each_chunk(nchunks, threads, &|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            // SAFETY: chunks are disjoint and each claimed exactly once.
            unsafe {
                let yc = ys.slice_mut(lo..hi);
                update(lo, hi, yc);
                ps.set(c, dot_chunk(yc, &w[lo..hi]));
            }
        });
    }
    let mut acc = 0.0;
    for &p in &partials[..nchunks] {
        acc += p;
    }
    acc
}

/// `y1 ← x1 + b·y1` and `y2 ← x2 + b·y2` in **one pass** — the paired
/// direction updates of the single-reduction (Chronopoulos–Gear) PCG
/// iteration, `p ← z + βp` and `s ← w + βs`, which share the scalar and
/// the chunk layout.
///
/// Chunk deterministic; for `b != 0.0` bitwise identical to the unfused
/// `xpby(x1, b, y1); xpby(x2, b, y2)` sequence (same layout, same
/// per-element arithmetic, disjoint chunk writes). `b == 0.0` is
/// deliberately **stronger** than the unfused arithmetic: both updates
/// become exact copies (`y ← x`) — the variant's initialization path —
/// so stale non-finite workspace contents cannot leak through a `0·y`
/// product the way `xpby`'s `x + 0·inf = NaN` would.
///
/// # Panics
/// Panics if the four slices differ in length.
pub fn fused_xpby_xpby(x1: &[f64], x2: &[f64], b: f64, y1: &mut [f64], y2: &mut [f64]) {
    let n = x1.len();
    assert_eq!(x2.len(), n, "fused_xpby_xpby: x2 length mismatch");
    assert_eq!(y1.len(), n, "fused_xpby_xpby: y1 length mismatch");
    assert_eq!(y2.len(), n, "fused_xpby_xpby: y2 length mismatch");
    let (chunk, nchunks) = par::reduction_layout(n);
    let update = |lo: usize, hi: usize, y1c: &mut [f64], y2c: &mut [f64]| {
        if b == 0.0 {
            y1c.copy_from_slice(&x1[lo..hi]);
            y2c.copy_from_slice(&x2[lo..hi]);
        } else {
            for (yi, xi) in y1c.iter_mut().zip(&x1[lo..hi]) {
                *yi = xi + b * *yi;
            }
            for (yi, xi) in y2c.iter_mut().zip(&x2[lo..hi]) {
                *yi = xi + b * *yi;
            }
        }
    };
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let (y1c, y2c) = (&mut y1[lo..hi], &mut y2[lo..hi]);
            update(lo, hi, y1c, y2c);
        }
        return;
    }
    let y1s = par::ParSlice::new(y1);
    let y2s = par::ParSlice::new(y2);
    par::for_each_chunk(nchunks, threads, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: chunks are disjoint and each claimed exactly once.
        unsafe {
            update(lo, hi, y1s.slice_mut(lo..hi), y2s.slice_mut(lo..hi));
        }
    });
}

/// `y1 ← y1 + a·x1` and `y2 ← y2 + a·x2` in **one pass** — the paired
/// recurrence updates of the pipelined (Ghysels–Vanroose) PCG iteration,
/// `z ← z − α·q` and `w ← w − α·zz`, which share the scalar and the chunk
/// layout. One memory traversal and one kernel launch instead of two
/// [`axpy`] sweeps.
///
/// Chunk deterministic and bitwise identical to the unfused
/// `axpy(a, x1, y1); axpy(a, x2, y2)` sequence (same layout, same
/// per-element arithmetic, disjoint chunk writes).
///
/// # Panics
/// Panics if the four slices differ in length.
pub fn fused_axpy2(a: f64, x1: &[f64], y1: &mut [f64], x2: &[f64], y2: &mut [f64]) {
    let n = x1.len();
    assert_eq!(y1.len(), n, "fused_axpy2: y1 length mismatch");
    assert_eq!(x2.len(), n, "fused_axpy2: x2 length mismatch");
    assert_eq!(y2.len(), n, "fused_axpy2: y2 length mismatch");
    let (chunk, nchunks) = par::reduction_layout(n);
    let update = |lo: usize, hi: usize, y1c: &mut [f64], y2c: &mut [f64]| {
        for (yi, xi) in y1c.iter_mut().zip(&x1[lo..hi]) {
            *yi += a * xi;
        }
        for (yi, xi) in y2c.iter_mut().zip(&x2[lo..hi]) {
            *yi += a * xi;
        }
    };
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let (y1c, y2c) = (&mut y1[lo..hi], &mut y2[lo..hi]);
            update(lo, hi, y1c, y2c);
        }
        return;
    }
    let y1s = par::ParSlice::new(y1);
    let y2s = par::ParSlice::new(y2);
    par::for_each_chunk(nchunks, threads, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: chunks are disjoint and each claimed exactly once.
        unsafe {
            update(lo, hi, y1s.slice_mut(lo..hi), y2s.slice_mut(lo..hi));
        }
    });
}

/// [`fused_xpby_xpby`] that additionally returns the inner product of the
/// **updated** vectors, `(y1, y2)` — for the single-reduction PCG this is
/// the `(p, s)` curvature guard, formed while both operands are still in
/// cache from their own updates instead of by a separate [`dot`] pass
/// (the SPMD mega-update phase uses this; one memory traversal instead of
/// two per iteration).
///
/// Same update semantics as [`fused_xpby_xpby`] (including the `b == 0.0`
/// exact-copy path); the returned product is chunk deterministic and
/// bitwise identical to calling [`dot`]`(y1, y2)` after the updates.
///
/// # Panics
/// Panics if the four slices differ in length.
pub fn fused_xpby_xpby_dot(x1: &[f64], x2: &[f64], b: f64, y1: &mut [f64], y2: &mut [f64]) -> f64 {
    let n = x1.len();
    assert_eq!(x2.len(), n, "fused_xpby_xpby_dot: x2 length mismatch");
    assert_eq!(y1.len(), n, "fused_xpby_xpby_dot: y1 length mismatch");
    assert_eq!(y2.len(), n, "fused_xpby_xpby_dot: y2 length mismatch");
    let (chunk, nchunks) = par::reduction_layout(n);
    let update = |lo: usize, hi: usize, y1c: &mut [f64], y2c: &mut [f64]| -> f64 {
        if b == 0.0 {
            y1c.copy_from_slice(&x1[lo..hi]);
            y2c.copy_from_slice(&x2[lo..hi]);
        } else {
            for (yi, xi) in y1c.iter_mut().zip(&x1[lo..hi]) {
                *yi = xi + b * *yi;
            }
            for (yi, xi) in y2c.iter_mut().zip(&x2[lo..hi]) {
                *yi = xi + b * *yi;
            }
        }
        dot_chunk(y1c, y2c)
    };
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        let mut acc = 0.0;
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let (head, tail) = (&mut y1[lo..hi], &mut y2[lo..hi]);
            acc += update(lo, hi, head, tail);
        }
        return acc;
    }
    let mut partials = [0.0f64; par::MAX_PARTIALS];
    {
        let y1s = par::ParSlice::new(y1);
        let y2s = par::ParSlice::new(y2);
        let ps = par::ParSlice::new(&mut partials);
        par::for_each_chunk(nchunks, threads, &|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            // SAFETY: chunks are disjoint and each claimed exactly once;
            // partial slot `c` is written only by this chunk.
            unsafe {
                let d = update(lo, hi, y1s.slice_mut(lo..hi), y2s.slice_mut(lo..hi));
                ps.set(c, d);
            }
        });
    }
    let mut acc = 0.0;
    for &p in &partials[..nchunks] {
        acc += p;
    }
    acc
}

/// Reduction results of [`fused_dot3_norm`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Dot3Norm {
    /// `(r, z)` — `γ` of the Chronopoulos–Gear recurrence.
    pub rz: f64,
    /// `(w, z)` — `δ` of the recurrence (`w = Kz`).
    pub wz: f64,
    /// `(p, s)` — the *directly measured* curvature `(p, Kp)` of the
    /// direction currently carried in the workspace (the recurrence only
    /// reconstructs it); the single-reduction breakdown guard.
    pub ps: f64,
    /// `‖r‖₂`, finished from the caller-provided `‖r‖∞` exactly like
    /// [`norm2_with_max`].
    pub r_norm2: f64,
}

impl Dot3Norm {
    /// Every reduction scalar is finite. Dot products are the reliable
    /// non-finite detectors of the fused kernels: one NaN/Inf element of
    /// any input vector poisons its sum, whereas the ∞-norm max can
    /// swallow a NaN behind a larger finite element. The solver loops
    /// check this before consuming α/β so a corrupted carry is caught the
    /// iteration it first feeds a reduction, while the iterate is still
    /// finite.
    pub fn all_finite(&self) -> bool {
        self.rz.is_finite()
            && self.wz.is_finite()
            && self.ps.is_finite()
            && self.r_norm2.is_finite()
    }
}

/// Per-chunk kernel of [`fused_dot3_norm`]: three [`dot_chunk`]-identical
/// dot partials plus the scaled sum-of-squares partial of
/// [`norm2_with_max`], in one traversal of the chunk.
#[inline]
fn dot3_norm_chunk(
    r: &[f64],
    z: &[f64],
    w: &[f64],
    p: &[f64],
    s: &[f64],
    inv_rmax: f64,
) -> (f64, f64, f64, f64) {
    (dot_chunk(r, z), dot_chunk(w, z), dot_chunk(p, s), {
        let mut sq = 0.0;
        for &ri in r {
            let t = ri * inv_rmax;
            sq += t * t;
        }
        sq
    })
}

/// The single-reduction PCG fused reduction phase: in **one pass** over
/// the fixed chunk layout, compute the three inner products the
/// Chronopoulos–Gear recurrence consumes — `(r, z)`, `(w, z)` and the
/// `(p, s)` breakdown guard — plus the relative-residual stopping norm
/// `‖r‖₂` (finished from the caller-provided `r_maxabs = ‖r‖∞`, which the
/// preceding [`fused_axpy_axpy_norm`] already produced). One memory
/// traversal and, on the SPMD solver, **one reduction phase** where the
/// classic iteration needs two serialized ones.
///
/// Bitwise contract: `rz`/`wz`/`ps` are identical to [`dot`]`(r, z)` /
/// [`dot`]`(w, z)` / [`dot`]`(p, s)`, and `r_norm2` to
/// [`norm2_with_max`]`(r, r_maxabs)` — same chunk layout, same per-chunk
/// kernels, partials combined in ascending chunk order.
///
/// # Panics
/// Panics if the five slices differ in length.
pub fn fused_dot3_norm(
    r: &[f64],
    z: &[f64],
    w: &[f64],
    p: &[f64],
    s: &[f64],
    r_maxabs: f64,
) -> Dot3Norm {
    let n = r.len();
    assert_eq!(z.len(), n, "fused_dot3_norm: z length mismatch");
    assert_eq!(w.len(), n, "fused_dot3_norm: w length mismatch");
    assert_eq!(p.len(), n, "fused_dot3_norm: p length mismatch");
    assert_eq!(s.len(), n, "fused_dot3_norm: s length mismatch");
    // norm2_with_max semantics for degenerate maxima: the scaled sum is
    // skipped and the max itself is the norm (0 or non-finite).
    let norm_degenerate = r_maxabs == 0.0 || !r_maxabs.is_finite();
    let inv_rmax = if norm_degenerate { 0.0 } else { 1.0 / r_maxabs };
    let (chunk, nchunks) = par::reduction_layout(n);
    let threads = par::threads_for(n, tuning::par_min_elems());
    let (rz, wz, ps, sq) = if threads <= 1 {
        let mut acc = (0.0, 0.0, 0.0, 0.0);
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let part = dot3_norm_chunk(
                &r[lo..hi],
                &z[lo..hi],
                &w[lo..hi],
                &p[lo..hi],
                &s[lo..hi],
                inv_rmax,
            );
            acc.0 += part.0;
            acc.1 += part.1;
            acc.2 += part.2;
            acc.3 += part.3;
        }
        acc
    } else {
        let mut rz_p = [0.0f64; par::MAX_PARTIALS];
        let mut wz_p = [0.0f64; par::MAX_PARTIALS];
        let mut ps_p = [0.0f64; par::MAX_PARTIALS];
        let mut sq_p = [0.0f64; par::MAX_PARTIALS];
        {
            let rzs = par::ParSlice::new(&mut rz_p);
            let wzs = par::ParSlice::new(&mut wz_p);
            let pss = par::ParSlice::new(&mut ps_p);
            let sqs = par::ParSlice::new(&mut sq_p);
            par::for_each_chunk(nchunks, threads, &|c| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(n);
                let part = dot3_norm_chunk(
                    &r[lo..hi],
                    &z[lo..hi],
                    &w[lo..hi],
                    &p[lo..hi],
                    &s[lo..hi],
                    inv_rmax,
                );
                // SAFETY: each chunk index is claimed exactly once; slot
                // `c` of every partial bank is written only by this chunk.
                unsafe {
                    rzs.set(c, part.0);
                    wzs.set(c, part.1);
                    pss.set(c, part.2);
                    sqs.set(c, part.3);
                }
            });
        }
        let mut acc = (0.0, 0.0, 0.0, 0.0);
        for c in 0..nchunks {
            acc.0 += rz_p[c];
            acc.1 += wz_p[c];
            acc.2 += ps_p[c];
            acc.3 += sq_p[c];
        }
        acc
    };
    Dot3Norm {
        rz,
        wz,
        ps,
        r_norm2: if norm_degenerate {
            r_maxabs
        } else {
            r_maxabs * sq.sqrt()
        },
    }
}

/// One chunk of the polynomial-preconditioner seed and step kernels —
/// shared by the serial entry points below and by the SPMD solver's
/// own-strip phases, so both paths run bitwise-identical per-element
/// arithmetic.
#[inline]
pub fn poly_seed_chunk(scale: f64, inv_diag: &[f64], r: &[f64], z: &mut [f64], d: &mut [f64]) {
    for i in 0..r.len() {
        let zi = scale * inv_diag[i] * r[i];
        z[i] = zi;
        d[i] = zi;
    }
}

/// Seed of the polynomial preconditioner recurrence: in one pass,
/// `z ← scale·D⁻¹·r` and `d ← z` — the degree-0 iterate and its first
/// difference. Chunk deterministic like every elementwise kernel here
/// (disjoint chunk writes, per-element arithmetic independent of the
/// layout).
///
/// # Panics
/// Panics if the four slices differ in length.
pub fn fused_poly_seed(scale: f64, inv_diag: &[f64], r: &[f64], z: &mut [f64], d: &mut [f64]) {
    let n = r.len();
    assert_eq!(inv_diag.len(), n, "fused_poly_seed: diag length mismatch");
    assert_eq!(z.len(), n, "fused_poly_seed: z length mismatch");
    assert_eq!(d.len(), n, "fused_poly_seed: d length mismatch");
    let (chunk, nchunks) = par::reduction_layout(n);
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            poly_seed_chunk(
                scale,
                &inv_diag[lo..hi],
                &r[lo..hi],
                &mut z[lo..hi],
                &mut d[lo..hi],
            );
        }
        return;
    }
    let zs = par::ParSlice::new(z);
    let ds = par::ParSlice::new(d);
    par::for_each_chunk(nchunks, threads, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: chunks are disjoint and each claimed exactly once.
        unsafe {
            poly_seed_chunk(
                scale,
                &inv_diag[lo..hi],
                &r[lo..hi],
                zs.slice_mut(lo..hi),
                ds.slice_mut(lo..hi),
            );
        }
    });
}

/// One chunk of the fused polynomial step — see [`fused_poly_step`].
#[inline]
pub fn poly_step_chunk(
    a: f64,
    b: f64,
    inv_diag: &[f64],
    r: &[f64],
    kz: &[f64],
    d: &mut [f64],
    z: &mut [f64],
) {
    for i in 0..r.len() {
        let resid = inv_diag[i] * (r[i] - kz[i]);
        let di = a * d[i] + b * resid;
        d[i] = di;
        z[i] += di;
    }
}

/// One degree of the polynomial preconditioner recurrence, fused into a
/// single pass: with `kz = K·z` already computed,
///
/// ```text
/// d ← a·d + b·D⁻¹(r − kz),    z ← z + d.
/// ```
///
/// Both the Newton (Richardson: `a = 0`) and Chebyshev (three-term)
/// recurrences are instances — the polynomial preconditioner application
/// is exactly `k` SpMVs interleaved with `k` of these sweeps, no other
/// vector traffic (the `fused_spmv_xpby`-shaped kernel the degree-k chain
/// needs). Chunk deterministic; disjoint chunk writes, no reductions.
///
/// # Panics
/// Panics if the six slices differ in length.
pub fn fused_poly_step(
    a: f64,
    b: f64,
    inv_diag: &[f64],
    r: &[f64],
    kz: &[f64],
    d: &mut [f64],
    z: &mut [f64],
) {
    let n = r.len();
    assert_eq!(inv_diag.len(), n, "fused_poly_step: diag length mismatch");
    assert_eq!(kz.len(), n, "fused_poly_step: kz length mismatch");
    assert_eq!(d.len(), n, "fused_poly_step: d length mismatch");
    assert_eq!(z.len(), n, "fused_poly_step: z length mismatch");
    let (chunk, nchunks) = par::reduction_layout(n);
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            poly_step_chunk(
                a,
                b,
                &inv_diag[lo..hi],
                &r[lo..hi],
                &kz[lo..hi],
                &mut d[lo..hi],
                &mut z[lo..hi],
            );
        }
        return;
    }
    let ds = par::ParSlice::new(d);
    let zs = par::ParSlice::new(z);
    par::for_each_chunk(nchunks, threads, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: chunks are disjoint and each claimed exactly once.
        unsafe {
            poly_step_chunk(
                a,
                b,
                &inv_diag[lo..hi],
                &r[lo..hi],
                &kz[lo..hi],
                ds.slice_mut(lo..hi),
                zs.slice_mut(lo..hi),
            );
        }
    });
}

/// One chunk of the s-step Chebyshev basis combine — shared by
/// [`fused_cheb_basis`] and the SPMD solver's own-strip basis phase, so
/// both paths run bitwise-identical per-element arithmetic.
#[inline]
pub fn cheb_basis_chunk(
    a: f64,
    theta: f64,
    b: f64,
    t: &[f64],
    v: &[f64],
    w: &[f64],
    out: &mut [f64],
) {
    for i in 0..t.len() {
        out[i] = a * (t[i] - theta * v[i]) - b * w[i];
    }
}

/// One step of the s-step Chebyshev *basis* three-term recurrence, fused
/// into a single pass: with `t = M⁻¹K·v` already computed,
///
/// ```text
/// out ← a·(t − θ·v) − b·w.
/// ```
///
/// The three shapes the recurrence needs are all instances:
/// the first step `v₂ = (1/δ)(t − θ v₁)` is `(a, b) = (1/δ, 0)`, the
/// general step `vⱼ₊₁ = (2/δ)(t − θ vⱼ) − vⱼ₋₁` is `(a, b) = (2/δ, 1)`,
/// and the degenerate-interval scaled-monomial fallback `vⱼ₊₁ = t/θ` is
/// `(a, θ, b) = (1/θ, 0, 0)`. The same pass shape as [`fused_poly_step`]:
/// chunk deterministic, disjoint chunk writes, no reductions. With
/// `b == 0.0` the `w` operand is multiplied by an exact zero, so stale
/// values cannot leak through.
///
/// # Panics
/// Panics if the four slices differ in length.
pub fn fused_cheb_basis(
    a: f64,
    theta: f64,
    b: f64,
    t: &[f64],
    v: &[f64],
    w: &[f64],
    out: &mut [f64],
) {
    let n = t.len();
    assert_eq!(v.len(), n, "fused_cheb_basis: v length mismatch");
    assert_eq!(w.len(), n, "fused_cheb_basis: w length mismatch");
    assert_eq!(out.len(), n, "fused_cheb_basis: out length mismatch");
    let (chunk, nchunks) = par::reduction_layout(n);
    let threads = par::threads_for(n, tuning::par_min_elems());
    if threads <= 1 {
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            cheb_basis_chunk(
                a,
                theta,
                b,
                &t[lo..hi],
                &v[lo..hi],
                &w[lo..hi],
                &mut out[lo..hi],
            );
        }
        return;
    }
    let os = par::ParSlice::new(out);
    par::for_each_chunk(nchunks, threads, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: chunks are disjoint and each claimed exactly once.
        unsafe {
            cheb_basis_chunk(
                a,
                theta,
                b,
                &t[lo..hi],
                &v[lo..hi],
                &w[lo..hi],
                os.slice_mut(lo..hi),
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..37).map(|i| i as f64 * 0.5 - 3.0).collect();
        let y: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12 * naive.abs().max(1.0));
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_handles_short_vectors() {
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot_crossing_chunk_boundaries_matches_naive() {
        let n = crate::par::MIN_REDUCTION_CHUNK * 3 + 17;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 37 + 11) % 101) as f64 - 50.0)
            .collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 53 + 5) % 97) as f64 * 0.01).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let d = dot(&x, &y);
        assert!(
            (d - naive).abs() < 1e-9 * naive.abs().max(1.0),
            "{d} vs {naive}"
        );
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn xpby_is_direction_update() {
        let r = [1.0, 1.0];
        let mut p = [4.0, 8.0];
        xpby(&r, 0.5, &mut p);
        assert_eq!(p, [3.0, 5.0]);
    }

    #[test]
    fn norms_agree_on_simple_vector() {
        let x = [3.0, -4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn norm2_resists_overflow() {
        let big = 1e200;
        let x = [big, big];
        assert!((norm2(&x) - big * std::f64::consts::SQRT_2).abs() / norm2(&x) < 1e-14);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0; 8]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_matches_sub_norm() {
        let x = [1.0, -2.0, 5.0];
        let y = [0.5, 2.0, 5.5];
        let mut z = [0.0; 3];
        sub(&x, &y, &mut z);
        assert_eq!(max_abs_diff(&x, &y), norm_inf(&z));
        assert_eq!(max_abs_diff(&x, &y), 4.0);
    }

    #[test]
    fn scale_and_zero() {
        let mut x = [1.0, 2.0];
        scale(3.0, &mut x);
        assert_eq!(x, [3.0, 6.0]);
        zero(&mut x);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 0.5, -1.0];
        let mut z = [0.0; 3];
        hadamard(&x, &y, &mut z);
        assert_eq!(z, [2.0, 1.0, -3.0]);
    }

    /// Fused CG update == unfused kernel sequence, bitwise, on a vector
    /// crossing several chunk boundaries.
    #[test]
    fn fused_axpy_axpy_norm_matches_unfused_sequence() {
        let n = crate::par::MIN_REDUCTION_CHUNK * 2 + 39;
        let alpha = 0.731;
        let p: Vec<f64> = (0..n)
            .map(|i| ((i * 13 + 5) % 211) as f64 * 0.01 - 1.0)
            .collect();
        let kp: Vec<f64> = (0..n)
            .map(|i| ((i * 29 + 1) % 173) as f64 * 0.02 - 1.5)
            .collect();
        let u0: Vec<f64> = (0..n).map(|i| ((i * 7 + 2) % 97) as f64 * 0.1).collect();
        let r0: Vec<f64> = (0..n)
            .map(|i| ((i * 11 + 3) % 89) as f64 * 0.05 - 2.0)
            .collect();

        let mut u_ref = u0.clone();
        let mut r_ref = r0.clone();
        axpy(alpha, &p, &mut u_ref);
        let p_norm = norm_inf(&p);
        axpy(-alpha, &kp, &mut r_ref);
        let r_norm = norm_inf(&r_ref);

        let mut u = u0;
        let mut r = r0;
        let norms = fused_axpy_axpy_norm(alpha, &p, &kp, &mut u, &mut r);
        assert_eq!(
            u.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            u_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r_ref.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(norms.p_norm_inf.to_bits(), p_norm.to_bits());
        assert_eq!(norms.r_norm_inf.to_bits(), r_norm.to_bits());
        // And norm2 can be finished from the fused max without a fresh
        // ∞-norm pass.
        assert_eq!(
            norm2_with_max(&r, norms.r_norm_inf).to_bits(),
            norm2(&r).to_bits()
        );
    }

    #[test]
    fn fused_xpby_dot_matches_unfused_sequence() {
        let n = crate::par::MIN_REDUCTION_CHUNK + 77;
        let x: Vec<f64> = (0..n).map(|i| ((i * 17 + 5) % 151) as f64 * 0.01).collect();
        let w: Vec<f64> = (0..n)
            .map(|i| ((i * 23 + 9) % 131) as f64 * 0.02 - 1.0)
            .collect();
        let y0: Vec<f64> = (0..n)
            .map(|i| ((i * 5 + 1) % 61) as f64 * 0.1 - 3.0)
            .collect();
        for b in [0.42, -1.3] {
            let mut y_ref = y0.clone();
            xpby(&x, b, &mut y_ref);
            let d_ref = dot(&y_ref, &w);
            let mut y = y0.clone();
            let d = fused_xpby_dot(&x, b, &mut y, &w);
            assert_eq!(d.to_bits(), d_ref.to_bits(), "b = {b}");
            assert!(y
                .iter()
                .zip(&y_ref)
                .all(|(a, c)| a.to_bits() == c.to_bits()));
        }
    }

    #[test]
    fn fused_xpby_dot_zero_b_is_exact_copy() {
        // Stale NaN in y must not survive b = 0 (copy semantics, not 0·y).
        let x = [1.0, 2.0, 3.0];
        let w = [1.0, 1.0, 1.0];
        let mut y = [f64::NAN, f64::INFINITY, -0.0];
        let d = fused_xpby_dot(&x, 0.0, &mut y, &w);
        assert_eq!(y, x);
        assert_eq!(d, 6.0);
    }

    #[test]
    fn fused_kernels_handle_empty_and_tiny() {
        let mut e: [f64; 0] = [];
        let mut e2: [f64; 0] = [];
        let norms = fused_axpy_axpy_norm(2.0, &[], &[], &mut e, &mut e2);
        assert_eq!(norms, FusedUpdateNorms::default());
        assert_eq!(fused_xpby_dot(&[], 1.0, &mut e, &[]), 0.0);
        let mut u = [1.0];
        let mut r = [4.0];
        let norms = fused_axpy_axpy_norm(0.5, &[2.0], &[6.0], &mut u, &mut r);
        assert_eq!(u, [2.0]);
        assert_eq!(r, [1.0]);
        assert_eq!(norms.p_norm_inf, 2.0);
        assert_eq!(norms.r_norm_inf, 1.0);
    }

    #[test]
    fn fused_xpby_xpby_matches_unfused_sequence() {
        let n = crate::par::MIN_REDUCTION_CHUNK + 53;
        let x1: Vec<f64> = (0..n).map(|i| ((i * 19 + 3) % 127) as f64 * 0.02).collect();
        let x2: Vec<f64> = (0..n)
            .map(|i| ((i * 7 + 11) % 113) as f64 * 0.03 - 1.5)
            .collect();
        let y10: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) % 71) as f64 * 0.1).collect();
        let y20: Vec<f64> = (0..n)
            .map(|i| ((i * 13 + 5) % 83) as f64 * 0.05 - 2.0)
            .collect();
        for b in [0.73, -0.4] {
            let mut y1_ref = y10.clone();
            let mut y2_ref = y20.clone();
            xpby(&x1, b, &mut y1_ref);
            xpby(&x2, b, &mut y2_ref);
            let mut y1 = y10.clone();
            let mut y2 = y20.clone();
            fused_xpby_xpby(&x1, &x2, b, &mut y1, &mut y2);
            assert!(y1
                .iter()
                .zip(&y1_ref)
                .all(|(a, c)| a.to_bits() == c.to_bits()));
            assert!(y2
                .iter()
                .zip(&y2_ref)
                .all(|(a, c)| a.to_bits() == c.to_bits()));
        }
    }

    #[test]
    fn fused_xpby_xpby_dot_matches_updates_then_dot() {
        let n = crate::par::MIN_REDUCTION_CHUNK + 61;
        let x1: Vec<f64> = (0..n).map(|i| ((i * 19 + 3) % 127) as f64 * 0.02).collect();
        let x2: Vec<f64> = (0..n)
            .map(|i| ((i * 7 + 11) % 113) as f64 * 0.03 - 1.5)
            .collect();
        let y10: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) % 71) as f64 * 0.1).collect();
        let y20: Vec<f64> = (0..n)
            .map(|i| ((i * 13 + 5) % 83) as f64 * 0.05 - 2.0)
            .collect();
        for b in [0.0, 0.62, -1.1] {
            let mut y1_ref = y10.clone();
            let mut y2_ref = y20.clone();
            fused_xpby_xpby(&x1, &x2, b, &mut y1_ref, &mut y2_ref);
            let d_ref = dot(&y1_ref, &y2_ref);
            let mut y1 = y10.clone();
            let mut y2 = y20.clone();
            let d = fused_xpby_xpby_dot(&x1, &x2, b, &mut y1, &mut y2);
            assert_eq!(d.to_bits(), d_ref.to_bits(), "b = {b}");
            assert!(y1
                .iter()
                .zip(&y1_ref)
                .all(|(a, c)| a.to_bits() == c.to_bits()));
            assert!(y2
                .iter()
                .zip(&y2_ref)
                .all(|(a, c)| a.to_bits() == c.to_bits()));
        }
    }

    #[test]
    fn fused_axpy2_matches_unfused_sequence() {
        let n = crate::par::MIN_REDUCTION_CHUNK + 47;
        let x1: Vec<f64> = (0..n).map(|i| ((i * 19 + 3) % 127) as f64 * 0.02).collect();
        let x2: Vec<f64> = (0..n)
            .map(|i| ((i * 7 + 11) % 113) as f64 * 0.03 - 1.5)
            .collect();
        let y10: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) % 71) as f64 * 0.1).collect();
        let y20: Vec<f64> = (0..n)
            .map(|i| ((i * 13 + 5) % 83) as f64 * 0.05 - 2.0)
            .collect();
        for a in [0.0, -0.731, 1.25] {
            let mut y1_ref = y10.clone();
            let mut y2_ref = y20.clone();
            axpy(a, &x1, &mut y1_ref);
            axpy(a, &x2, &mut y2_ref);
            let mut y1 = y10.clone();
            let mut y2 = y20.clone();
            fused_axpy2(a, &x1, &mut y1, &x2, &mut y2);
            assert!(y1
                .iter()
                .zip(&y1_ref)
                .all(|(u, v)| u.to_bits() == v.to_bits()));
            assert!(y2
                .iter()
                .zip(&y2_ref)
                .all(|(u, v)| u.to_bits() == v.to_bits()));
        }
        // Tiny and empty inputs.
        let mut e1: [f64; 0] = [];
        let mut e2: [f64; 0] = [];
        fused_axpy2(2.0, &[], &mut e1, &[], &mut e2);
        let mut a1 = [1.0];
        let mut a2 = [2.0];
        fused_axpy2(0.5, &[4.0], &mut a1, &[-2.0], &mut a2);
        assert_eq!(a1, [3.0]);
        assert_eq!(a2, [1.0]);
    }

    #[test]
    fn fused_xpby_xpby_zero_b_is_exact_copy() {
        let x1 = [1.0, 2.0];
        let x2 = [3.0, 4.0];
        let mut y1 = [f64::NAN, f64::INFINITY];
        let mut y2 = [-0.0, f64::NAN];
        fused_xpby_xpby(&x1, &x2, 0.0, &mut y1, &mut y2);
        assert_eq!(y1, x1);
        assert_eq!(y2, x2);
    }

    #[test]
    fn fused_dot3_norm_matches_unfused_reductions() {
        let n = crate::par::MIN_REDUCTION_CHUNK * 2 + 91;
        let mk = |a: usize, b: usize, m: usize, s: f64, off: f64| -> Vec<f64> {
            (0..n).map(|i| ((i * a + b) % m) as f64 * s - off).collect()
        };
        let r = mk(13, 5, 211, 0.01, 1.0);
        let z = mk(29, 1, 173, 0.02, 1.5);
        let w = mk(7, 2, 97, 0.1, 3.0);
        let p = mk(11, 3, 89, 0.05, 2.0);
        let s = mk(17, 9, 151, 0.03, 0.5);
        let rmax = norm_inf(&r);
        let out = fused_dot3_norm(&r, &z, &w, &p, &s, rmax);
        assert_eq!(out.rz.to_bits(), dot(&r, &z).to_bits());
        assert_eq!(out.wz.to_bits(), dot(&w, &z).to_bits());
        assert_eq!(out.ps.to_bits(), dot(&p, &s).to_bits());
        assert_eq!(out.r_norm2.to_bits(), norm2_with_max(&r, rmax).to_bits());
        assert_eq!(out.r_norm2.to_bits(), norm2(&r).to_bits());
    }

    #[test]
    fn fused_dot3_norm_degenerate_and_empty() {
        // Zero max: the scaled-sum pass is skipped, norm is the max itself.
        let zeros = [0.0; 4];
        let ones = [1.0; 4];
        let out = fused_dot3_norm(&zeros, &ones, &ones, &ones, &ones, 0.0);
        assert_eq!(out.r_norm2, 0.0);
        assert_eq!(out.rz, 0.0);
        assert_eq!(out.ps, 4.0);
        // Non-finite max propagates like norm2_with_max.
        let out = fused_dot3_norm(&ones, &ones, &ones, &ones, &ones, f64::INFINITY);
        assert_eq!(out.r_norm2, f64::INFINITY);
        // Empty vectors.
        let e: [f64; 0] = [];
        let out = fused_dot3_norm(&e, &e, &e, &e, &e, 0.0);
        assert_eq!(out, Dot3Norm::default());
    }

    #[test]
    fn fused_dot3_norm_is_thread_count_insensitive() {
        let _guard = crate::par::thread_sweep_lock();
        let n = crate::tuning::par_min_elems() + 777;
        let mk = |a: usize, m: usize, s: f64| -> Vec<f64> {
            (0..n).map(|i| ((i * a + 1) % m) as f64 * s - 0.5).collect()
        };
        let r = mk(31, 1013, 1e-3);
        let z = mk(17, 911, 1e-3);
        let w = mk(23, 809, 1e-3);
        let p = mk(41, 701, 1e-3);
        let s = mk(37, 613, 1e-3);
        let rmax = norm_inf(&r);
        let before = crate::par::max_threads();
        crate::par::set_max_threads(1);
        let ref1 = fused_dot3_norm(&r, &z, &w, &p, &s, rmax);
        for t in [2usize, 4, 8] {
            crate::par::set_max_threads(t);
            let out = fused_dot3_norm(&r, &z, &w, &p, &s, rmax);
            assert_eq!(ref1.rz.to_bits(), out.rz.to_bits(), "rz at t = {t}");
            assert_eq!(ref1.wz.to_bits(), out.wz.to_bits(), "wz at t = {t}");
            assert_eq!(ref1.ps.to_bits(), out.ps.to_bits(), "ps at t = {t}");
            assert_eq!(
                ref1.r_norm2.to_bits(),
                out.r_norm2.to_bits(),
                "norm at t = {t}"
            );
        }
        crate::par::set_max_threads(before);
    }

    /// The determinism contract, at unit level: serial result == parallel
    /// result, bitwise, for every configured thread count.
    #[test]
    fn reductions_are_thread_count_insensitive() {
        let _guard = crate::par::thread_sweep_lock();
        let n = crate::tuning::par_min_elems() + 4321;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 31 + 7) % 1013) as f64 * 1e-3 - 0.5)
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| ((i * 17 + 3) % 911) as f64 * 1e-3 - 0.4)
            .collect();
        let before = crate::par::max_threads();
        crate::par::set_max_threads(1);
        let d1 = dot(&x, &y);
        let n1 = norm2(&x);
        for t in [2usize, 4, 8] {
            crate::par::set_max_threads(t);
            assert_eq!(d1.to_bits(), dot(&x, &y).to_bits(), "dot at t = {t}");
            assert_eq!(n1.to_bits(), norm2(&x).to_bits(), "norm2 at t = {t}");
        }
        crate::par::set_max_threads(before);
    }

    /// The fused reduction scalars are the solver's non-finite detectors:
    /// one poisoned element must surface through `all_finite`.
    #[test]
    fn fused_reduction_scalars_detect_non_finite_elements() {
        let n = 64usize;
        let mut r: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let z: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let w: Vec<f64> = (0..n).map(|i| 0.5 - (i % 7) as f64 * 0.1).collect();
        let p: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.2 - 0.3).collect();
        let s: Vec<f64> = (0..n).map(|i| (i % 3) as f64 * 0.4 - 0.2).collect();
        let clean = fused_dot3_norm(&r, &z, &w, &p, &s, norm_inf(&r));
        assert!(clean.all_finite());
        r[n / 2] = f64::NAN;
        let poisoned = fused_dot3_norm(&r, &z, &w, &p, &s, 1.0);
        assert!(!poisoned.all_finite(), "NaN in r must poison (r, z)");
        r[n / 2] = f64::INFINITY;
        let poisoned = fused_dot3_norm(&r, &z, &w, &p, &s, 1.0);
        assert!(!poisoned.all_finite(), "Inf in r must poison (r, z)");

        // The ∞-norm caveat the docs state: a NaN behind a larger finite
        // element is swallowed by max, so FusedUpdateNorms::all_finite is
        // a weaker (Inf-only) detector than the dot scalars.
        let alpha = 0.5;
        let mut u = vec![0.0; 4];
        let mut rr = vec![1.0, f64::INFINITY, 3.0, 4.0];
        let norms = fused_axpy_axpy_norm(alpha, &[1.0; 4], &[1.0; 4], &mut u, &mut rr);
        assert!(!norms.all_finite(), "Inf residual element must surface");
    }

    #[test]
    fn fused_poly_seed_matches_elementwise() {
        let n = 533;
        let inv_diag: Vec<f64> = (0..n).map(|i| 1.0 / (2.0 + (i % 5) as f64)).collect();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut z = vec![f64::NAN; n]; // overwritten, stale values must not leak
        let mut d = vec![f64::NAN; n];
        fused_poly_seed(0.25, &inv_diag, &r, &mut z, &mut d);
        for i in 0..n {
            let want = 0.25 * inv_diag[i] * r[i];
            assert_eq!(z[i].to_bits(), want.to_bits());
            assert_eq!(d[i].to_bits(), want.to_bits());
        }
    }

    #[test]
    fn fused_poly_step_matches_unfused_sweeps() {
        let n = 321;
        let inv_diag: Vec<f64> = (0..n).map(|i| 1.0 / (3.0 + (i % 3) as f64)).collect();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let kz: Vec<f64> = (0..n).map(|i| (i % 11) as f64 * 0.1 - 0.5).collect();
        let d0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
        let z0: Vec<f64> = (0..n).map(|i| 1.0 - (i % 4) as f64 * 0.3).collect();
        let (a, b) = (0.375, 1.25);
        let mut d = d0.clone();
        let mut z = z0.clone();
        fused_poly_step(a, b, &inv_diag, &r, &kz, &mut d, &mut z);
        for i in 0..n {
            let resid = inv_diag[i] * (r[i] - kz[i]);
            let want_d = a * d0[i] + b * resid;
            let want_z = z0[i] + want_d;
            assert_eq!(d[i].to_bits(), want_d.to_bits());
            assert_eq!(z[i].to_bits(), want_z.to_bits());
        }
        // Newton instance: a = 0 drops the previous difference entirely.
        let mut dn = vec![f64::NAN; n];
        let mut zn = z0.clone();
        // NaN·0 would poison; the kernel must still multiply (a·d), so use
        // finite stale data to check the a = 0 arithmetic stays exact.
        dn.copy_from_slice(&d0);
        fused_poly_step(0.0, b, &inv_diag, &r, &kz, &mut dn, &mut zn);
        for i in 0..n {
            let want_d = 0.0 * d0[i] + b * (inv_diag[i] * (r[i] - kz[i]));
            assert_eq!(dn[i].to_bits(), want_d.to_bits());
        }
    }

    #[test]
    fn fused_cheb_basis_matches_elementwise() {
        let n = 417;
        let t: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        let v: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.2 - 0.6).collect();
        let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
        let (a, theta, b) = (2.0 / 0.45, 0.55, 1.0);
        let mut out = vec![f64::NAN; n]; // overwritten, stale values must not leak
        fused_cheb_basis(a, theta, b, &t, &v, &w, &mut out);
        for i in 0..n {
            let want = a * (t[i] - theta * v[i]) - b * w[i];
            assert_eq!(out[i].to_bits(), want.to_bits());
        }
        // First-step instance: b = 0 must be an exact zero multiply so a
        // finite-but-stale `w` contributes nothing.
        let mut first = vec![f64::NAN; n];
        fused_cheb_basis(1.0 / 0.45, theta, 0.0, &t, &v, &w, &mut first);
        for i in 0..n {
            let want = (1.0 / 0.45) * (t[i] - theta * v[i]) - 0.0 * w[i];
            assert_eq!(first[i].to_bits(), want.to_bits());
        }
    }
}
