//! BLAS-1 style vector kernels.
//!
//! The conjugate gradient iteration (Algorithm 1 of the paper) is built
//! almost entirely from these operations. They are written as plain indexed
//! loops over equal-length slices, which LLVM auto-vectorizes; the explicit
//! `assert_eq!` length checks hoist the bounds checks out of the loops.
//!
//! The paper's central performance observation — that the two *inner
//! products* per CG iteration are the expensive part on both vector machines
//! and processor arrays — is modelled in `mspcg-machine`; here we provide
//! the numerically careful reference kernels *and* their data-parallel
//! forms.
//!
//! ## Determinism contract
//!
//! Every reduction (dot, norms) is computed over the fixed chunk layout of
//! [`crate::par::reduction_layout`]: one partial per chunk, partials
//! combined in ascending chunk order. Chunk boundaries depend only on the
//! vector length, so results are **bitwise identical** across thread counts
//! and between the serial and parallel code paths. Elementwise kernels
//! (axpy, xpby, …) write disjoint chunks and are trivially deterministic.
//! Large inputs run on the `mspcg-sparse` worker pool (behind the `par`
//! feature); small inputs take the serial path (see
//! [`crate::par::PAR_MIN_ELEMS`]).

use crate::par;

/// Serial dot kernel over one chunk: four independent partial accumulators,
/// which both enables vectorization and reduces the rounding error compared
/// to a single serial accumulator.
#[inline]
fn dot_chunk(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// Dot product `xᵀy`, chunk-deterministic (see the module docs).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let n = x.len();
    let (chunk, nchunks) = par::reduction_layout(n);
    let threads = par::threads_for(n, par::PAR_MIN_ELEMS);
    if threads <= 1 {
        let mut acc = 0.0;
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            acc += dot_chunk(&x[lo..hi], &y[lo..hi]);
        }
        return acc;
    }
    let mut partials = [0.0f64; par::MAX_PARTIALS];
    {
        let ps = par::ParSlice::new(&mut partials);
        par::for_each_chunk(nchunks, threads, &|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            // SAFETY: each chunk index is claimed exactly once.
            unsafe { ps.set(c, dot_chunk(&x[lo..hi], &y[lo..hi])) };
        });
    }
    let mut acc = 0.0;
    for &p in &partials[..nchunks] {
        acc += p;
    }
    acc
}

/// Distribute an elementwise update over the fixed chunk layout.
#[inline]
fn elementwise(n: usize, y: &mut [f64], body: impl Fn(usize, usize, &mut [f64]) + Sync) {
    let threads = par::threads_for(n, par::PAR_MIN_ELEMS);
    let (chunk, nchunks) = par::reduction_layout(n);
    if threads <= 1 {
        for c in 0..nchunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            body(lo, hi, &mut y[lo..hi]);
        }
        return;
    }
    let ys = par::ParSlice::new(y);
    par::for_each_chunk(nchunks, threads, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: chunks are disjoint and each claimed exactly once.
        let yc = unsafe { ys.slice_mut(lo..hi) };
        body(lo, hi, yc);
    });
}

/// `y ← y + a·x` (the classic AXPY).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    elementwise(x.len(), y, |lo, hi, yc| {
        for (yi, xi) in yc.iter_mut().zip(&x[lo..hi]) {
            *yi += a * xi;
        }
    });
}

/// `y ← x + b·y` (scale-and-add used by the CG direction update
/// `p ← r̂ + β p`).
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    elementwise(x.len(), y, |lo, hi, yc| {
        for (yi, xi) in yc.iter_mut().zip(&x[lo..hi]) {
            *yi = xi + b * *yi;
        }
    });
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    elementwise(x.len(), x, |_, _, xc| {
        for xi in xc.iter_mut() {
            *xi *= a;
        }
    });
}

/// Copy `src` into `dst`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Set every element to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    x.fill(0.0);
}

/// Max-style chunk-deterministic reduction shared by the ∞-norm kernels.
#[inline]
fn max_reduce(n: usize, chunk_max: impl Fn(usize, usize) -> f64 + Sync) -> f64 {
    let (chunk, nchunks) = par::reduction_layout(n);
    let threads = par::threads_for(n, par::PAR_MIN_ELEMS);
    if threads <= 1 {
        let mut m = 0.0f64;
        for c in 0..nchunks {
            let v = chunk_max(c * chunk, (c * chunk + chunk).min(n));
            if v > m {
                m = v;
            }
        }
        return m;
    }
    let mut partials = [0.0f64; par::MAX_PARTIALS];
    {
        let ps = par::ParSlice::new(&mut partials);
        par::for_each_chunk(nchunks, threads, &|c| {
            // SAFETY: each chunk index is claimed exactly once.
            unsafe { ps.set(c, chunk_max(c * chunk, (c * chunk + chunk).min(n))) };
        });
    }
    let mut m = 0.0f64;
    for &v in &partials[..nchunks] {
        if v > m {
            m = v;
        }
    }
    m
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow for very
/// large components.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let maxabs = norm_inf(x);
    if maxabs == 0.0 || !maxabs.is_finite() {
        return maxabs;
    }
    let inv = 1.0 / maxabs;
    let n = x.len();
    let (chunk, nchunks) = par::reduction_layout(n);
    let sq_chunk = |lo: usize, hi: usize| -> f64 {
        let mut s = 0.0;
        for &xi in &x[lo..hi] {
            let t = xi * inv;
            s += t * t;
        }
        s
    };
    let threads = par::threads_for(n, par::PAR_MIN_ELEMS);
    let mut s = 0.0;
    if threads <= 1 {
        for c in 0..nchunks {
            s += sq_chunk(c * chunk, (c * chunk + chunk).min(n));
        }
    } else {
        let mut partials = [0.0f64; par::MAX_PARTIALS];
        {
            let ps = par::ParSlice::new(&mut partials);
            par::for_each_chunk(nchunks, threads, &|c| {
                // SAFETY: each chunk index is claimed exactly once.
                unsafe { ps.set(c, sq_chunk(c * chunk, (c * chunk + chunk).min(n))) };
            });
        }
        for &p in &partials[..nchunks] {
            s += p;
        }
    }
    maxabs * s.sqrt()
}

/// Max norm `‖x‖∞` — the norm the paper's convergence test uses
/// (`|u^{k+1} − u^k|_∞ < ε`, Algorithm 1 step (3)).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    max_reduce(x.len(), |lo, hi| {
        let mut m = 0.0f64;
        for &xi in &x[lo..hi] {
            let a = xi.abs();
            if a > m {
                m = a;
            }
        }
        m
    })
}

/// `‖x − y‖∞` without forming the difference vector; used by the
/// displacement-change stopping test.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    max_reduce(x.len(), |lo, hi| {
        let mut m = 0.0f64;
        for (xi, yi) in x[lo..hi].iter().zip(&y[lo..hi]) {
            let a = (xi - yi).abs();
            if a > m {
                m = a;
            }
        }
        m
    })
}

/// Elementwise product `z ← x ⊙ y` (used by diagonal scaling).
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn hadamard(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "hadamard: length mismatch");
    assert_eq!(x.len(), z.len(), "hadamard: output length mismatch");
    elementwise(x.len(), z, |lo, hi, zc| {
        for ((zi, xi), yi) in zc.iter_mut().zip(&x[lo..hi]).zip(&y[lo..hi]) {
            *zi = xi * yi;
        }
    });
}

/// `z ← x − y`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn sub(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    assert_eq!(x.len(), z.len(), "sub: output length mismatch");
    elementwise(x.len(), z, |lo, hi, zc| {
        for ((zi, xi), yi) in zc.iter_mut().zip(&x[lo..hi]).zip(&y[lo..hi]) {
            *zi = xi - yi;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..37).map(|i| i as f64 * 0.5 - 3.0).collect();
        let y: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12 * naive.abs().max(1.0));
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_handles_short_vectors() {
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot_crossing_chunk_boundaries_matches_naive() {
        let n = crate::par::MIN_REDUCTION_CHUNK * 3 + 17;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 37 + 11) % 101) as f64 - 50.0)
            .collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 53 + 5) % 97) as f64 * 0.01).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let d = dot(&x, &y);
        assert!(
            (d - naive).abs() < 1e-9 * naive.abs().max(1.0),
            "{d} vs {naive}"
        );
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn xpby_is_direction_update() {
        let r = [1.0, 1.0];
        let mut p = [4.0, 8.0];
        xpby(&r, 0.5, &mut p);
        assert_eq!(p, [3.0, 5.0]);
    }

    #[test]
    fn norms_agree_on_simple_vector() {
        let x = [3.0, -4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn norm2_resists_overflow() {
        let big = 1e200;
        let x = [big, big];
        assert!((norm2(&x) - big * std::f64::consts::SQRT_2).abs() / norm2(&x) < 1e-14);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0; 8]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_matches_sub_norm() {
        let x = [1.0, -2.0, 5.0];
        let y = [0.5, 2.0, 5.5];
        let mut z = [0.0; 3];
        sub(&x, &y, &mut z);
        assert_eq!(max_abs_diff(&x, &y), norm_inf(&z));
        assert_eq!(max_abs_diff(&x, &y), 4.0);
    }

    #[test]
    fn scale_and_zero() {
        let mut x = [1.0, 2.0];
        scale(3.0, &mut x);
        assert_eq!(x, [3.0, 6.0]);
        zero(&mut x);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 0.5, -1.0];
        let mut z = [0.0; 3];
        hadamard(&x, &y, &mut z);
        assert_eq!(z, [2.0, 1.0, -3.0]);
    }

    /// The determinism contract, at unit level: serial result == parallel
    /// result, bitwise, for every configured thread count.
    #[test]
    fn reductions_are_thread_count_insensitive() {
        let _guard = crate::par::thread_sweep_lock();
        let n = crate::par::PAR_MIN_ELEMS + 4321;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 31 + 7) % 1013) as f64 * 1e-3 - 0.5)
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| ((i * 17 + 3) % 911) as f64 * 1e-3 - 0.4)
            .collect();
        let before = crate::par::max_threads();
        crate::par::set_max_threads(1);
        let d1 = dot(&x, &y);
        let n1 = norm2(&x);
        for t in [2usize, 4, 8] {
            crate::par::set_max_threads(t);
            assert_eq!(d1.to_bits(), dot(&x, &y).to_bits(), "dot at t = {t}");
            assert_eq!(n1.to_bits(), norm2(&x).to_bits(), "norm2 at t = {t}");
        }
        crate::par::set_max_threads(before);
    }
}
