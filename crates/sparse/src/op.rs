//! The operator abstraction the solver stack is generic over.
//!
//! Adams' m-step PCG spends essentially all of its time in two places: the
//! sparse matrix–vector product `K·p` and the multicolor splitting sweeps.
//! The paper's machine analysis (§3–4) assumes those kernels vectorize and
//! parallelize *regardless of the storage layout* — the CYBER runs them by
//! diagonals, the Finite Element Machine by rows. [`SparseOp`] is that
//! assumption as a trait: any format that can
//!
//! 1. report its shape and stored-entry count,
//! 2. run a **serial SpMV over a row range** in ascending-column order, and
//! 3. describe a **work-weighted chunk layout** for the parallel driver
//!
//! plugs into `pcg_solve_into`, `pcg_solve_multi`, the SPMD
//! `ParallelMStepPcg` and the preconditioner constructors without touching
//! any of them. [`crate::csr::CsrMatrix`], [`crate::dia::DiaMatrix`],
//! [`crate::dense::DenseMatrix`] and [`crate::sellcs::SellCsMatrix`]
//! implement it; future formats (blocked CSR, NUMA-partitioned) drop in
//! the same way.
//!
//! ## Determinism contract
//!
//! [`SparseOp::mul_vec_range_into`] / [`SparseOp::mul_vec_axpy_range`]
//! must accumulate each row into a single scalar in **ascending column
//! order** — the CSR row loop's order. Because every parallel entry point
//! computes each row independently of the chunk layout, two formats that
//! store the same matrix then produce **bitwise-identical** products, for
//! any thread count, and whole solver runs replay identically across
//! formats (`tests/par_determinism.rs` asserts this end to end).
//!
//! ## Scheduling hook
//!
//! The provided [`SparseOp::mul_vec_into`] / [`SparseOp::mul_vec_axpy`]
//! drivers reuse the nnz-weighted chunk machinery of [`crate::par`]: the
//! layout comes from [`par::spmv_layout`]`(self.nnz())` and
//! [`SparseOp::chunk_rows`] maps chunk indices to row ranges. The default
//! `chunk_rows` assumes uniform work per row (exact for DIA and dense);
//! formats with a row-length prefix sum (CSR) or slice table (SELL-C-σ)
//! override it — or override the whole driver — so dense-ish row runs
//! cannot serialize the pool.

use crate::csr::CsrMatrix;
use crate::par::{self, ParSlice};
use crate::sellcs::SellCsMatrix;
use crate::tuning::{self, MatrixFormat};
use std::ops::Range;

/// A sparse (or dense) linear operator with deterministic row-parallel
/// SpMV. See the [module docs](self) for the contract.
pub trait SparseOp: Sync {
    /// Number of rows.
    fn rows(&self) -> usize;

    /// Number of columns.
    fn cols(&self) -> usize;

    /// Stored scalars — the work measure the adaptive thresholds and the
    /// nnz-weighted schedules consume. Formats with structural padding
    /// (DIA) count the padded storage they actually stream.
    fn nnz(&self) -> usize;

    /// `(rows, cols)`.
    fn dims(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Serial SpMV over a row range: `y[k] ← (A·x)[rows.start + k]`, each
    /// row accumulated into one scalar in ascending column order (the
    /// cross-format determinism contract).
    ///
    /// # Panics
    /// Implementations panic if `y.len() != rows.len()`, the range is out
    /// of bounds, or `x.len() != cols()`.
    fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: Range<usize>);

    /// Serial fused SpMV-accumulate over a row range:
    /// `y[k] += a·(A·x)[rows.start + k]`, same ordering contract as
    /// [`SparseOp::mul_vec_range_into`].
    ///
    /// # Panics
    /// Same conditions as [`SparseOp::mul_vec_range_into`].
    fn mul_vec_axpy_range(&self, a: f64, x: &[f64], y: &mut [f64], rows: Range<usize>);

    /// Visit the stored entries of row `i` as `(col, value)` pairs in
    /// ascending column order. This is the **structure hook** for
    /// format-generic consumers that need entries rather than products —
    /// splitting construction, diagonal extraction, format conversion —
    /// not a hot-loop API. Formats whose storage cannot distinguish a
    /// stored zero from padding (DIA) skip zero values.
    fn visit_row(&self, i: usize, visit: &mut dyn FnMut(usize, f64));

    /// Row range owned by chunk `c` of the nnz-weighted parallel schedule,
    /// where `chunk_nnz` comes from [`par::spmv_layout`]`(self.nnz())`.
    /// Chunks must be contiguous, disjoint, ascending and exhaustive over
    /// `0..rows()`, and must depend only on the matrix structure (never
    /// the thread count). The default assumes uniform work per row.
    fn chunk_rows(&self, chunk_nnz: usize, c: usize) -> Range<usize> {
        let rows = self.rows();
        let (_, nchunks) = par::spmv_layout(self.nnz());
        debug_assert!(chunk_nnz > 0 && nchunks > 0);
        let per = rows.div_ceil(nchunks.max(1)).max(1);
        (c * per).min(rows)..((c + 1) * per).min(rows)
    }

    /// `y ← A·x`: the adaptive serial/parallel entry point. The provided
    /// driver runs serially below [`tuning::par_min_nnz`] stored entries
    /// and otherwise distributes [`SparseOp::chunk_rows`] chunks over the
    /// worker pool, writing disjoint row ranges — bitwise identical to the
    /// serial path by the row-independence of the range kernel.
    ///
    /// # Panics
    /// Panics if `x.len() != cols()` or `y.len() != rows()`.
    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "mul_vec: x length mismatch");
        assert_eq!(y.len(), self.rows(), "mul_vec: y length mismatch");
        let threads = par::threads_for(self.nnz(), tuning::par_min_nnz());
        if threads <= 1 {
            self.mul_vec_range_into(x, y, 0..self.rows());
            return;
        }
        let (chunk_nnz, nchunks) = par::spmv_layout(self.nnz());
        let ys = ParSlice::new(y);
        par::for_each_chunk(nchunks, threads, &|c| {
            let rows = self.chunk_rows(chunk_nnz, c);
            // SAFETY: chunk row ranges are disjoint and each claimed once.
            let out = unsafe { ys.slice_mut(rows.clone()) };
            self.mul_vec_range_into(x, out, rows);
        });
    }

    /// `y ← y + a·(A·x)`: fused accumulate twin of
    /// [`SparseOp::mul_vec_into`], same driver and determinism contract.
    ///
    /// # Panics
    /// Panics if `x.len() != cols()` or `y.len() != rows()`.
    fn mul_vec_axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "mul_vec_axpy: x length mismatch");
        assert_eq!(y.len(), self.rows(), "mul_vec_axpy: y length mismatch");
        let threads = par::threads_for(self.nnz(), tuning::par_min_nnz());
        if threads <= 1 {
            self.mul_vec_axpy_range(a, x, y, 0..self.rows());
            return;
        }
        let (chunk_nnz, nchunks) = par::spmv_layout(self.nnz());
        let ys = ParSlice::new(y);
        par::for_each_chunk(nchunks, threads, &|c| {
            let rows = self.chunk_rows(chunk_nnz, c);
            // SAFETY: chunk row ranges are disjoint and each claimed once.
            let out = unsafe { ys.slice_mut(rows.clone()) };
            self.mul_vec_axpy_range(a, x, out, rows);
        });
    }

    /// Allocating `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols()`.
    fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows()];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Write the main diagonal into `out` (`0.0` where unstored) — the
    /// hook Jacobi-type splittings build from.
    ///
    /// # Panics
    /// Panics if `out.len() != rows()`.
    fn diag_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows(), "diag_into: length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let mut d = 0.0;
            self.visit_row(i, &mut |j, v| {
                if j == i {
                    d = v;
                }
            });
            *o = d;
        }
    }

    /// Materialize a CSR copy of the operator, row by row through
    /// [`SparseOp::visit_row`] — the bridge format-generic constructors
    /// (multicolor SSOR, the SPMD solver's sweep tables) use. Entries
    /// arrive in ascending column order, so the copy reproduces the exact
    /// stored values and ordering the SpMV kernels stream.
    fn csr_copy(&self) -> CsrMatrix {
        let rows = self.rows();
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for i in 0..rows {
            self.visit_row(i, &mut |j, v| {
                col_idx.push(j as u32);
                values.push(v);
            });
            row_ptr[i + 1] = col_idx.len();
        }
        CsrMatrix::from_raw_parts(rows, self.cols(), row_ptr, col_idx, values)
            .expect("visit_row produced an invalid row structure")
    }
}

/// Forward every method — including the parallel drivers and scheduling
/// hooks a format may have specialized — through a pointer-like wrapper,
/// so `&A` and `Arc<A>` are operators wherever `A` is (the solver stack
/// holds systems behind `Arc`).
macro_rules! deref_sparse_op {
    ([$($g:tt)*] $ty:ty) => {
        impl<$($g)*> SparseOp for $ty {
            fn rows(&self) -> usize {
                (**self).rows()
            }
            fn cols(&self) -> usize {
                (**self).cols()
            }
            fn nnz(&self) -> usize {
                (**self).nnz()
            }
            fn dims(&self) -> (usize, usize) {
                (**self).dims()
            }
            fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: Range<usize>) {
                (**self).mul_vec_range_into(x, y, rows)
            }
            fn mul_vec_axpy_range(&self, a: f64, x: &[f64], y: &mut [f64], rows: Range<usize>) {
                (**self).mul_vec_axpy_range(a, x, y, rows)
            }
            fn visit_row(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
                (**self).visit_row(i, visit)
            }
            fn chunk_rows(&self, chunk_nnz: usize, c: usize) -> Range<usize> {
                (**self).chunk_rows(chunk_nnz, c)
            }
            fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
                (**self).mul_vec_into(x, y)
            }
            fn mul_vec_axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
                (**self).mul_vec_axpy(a, x, y)
            }
            fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
                (**self).mul_vec(x)
            }
            fn diag_into(&self, out: &mut [f64]) {
                (**self).diag_into(out)
            }
            fn csr_copy(&self) -> CsrMatrix {
                (**self).csr_copy()
            }
        }
    };
}

deref_sparse_op!(['a, T: SparseOp + ?Sized] &'a T);
deref_sparse_op!([T: SparseOp + Send + Sync + ?Sized] std::sync::Arc<T>);

impl SparseOp for CsrMatrix {
    fn rows(&self) -> usize {
        CsrMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CsrMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        CsrMatrix::mul_vec_range_into(self, x, y, rows);
    }

    fn mul_vec_axpy_range(&self, a: f64, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        CsrMatrix::mul_vec_axpy_range(self, a, x, y, rows);
    }

    fn visit_row(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
        for (j, v) in self.row_entries(i) {
            visit(j, v);
        }
    }

    /// `row_ptr` prefix-sum bucketing ([`par::spmv_chunk_rows`]).
    fn chunk_rows(&self, chunk_nnz: usize, c: usize) -> Range<usize> {
        par::spmv_chunk_rows(self.row_ptr(), chunk_nnz, c)
    }

    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::mul_vec_into(self, x, y);
    }

    fn mul_vec_axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        CsrMatrix::mul_vec_axpy(self, a, x, y);
    }

    fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        CsrMatrix::mul_vec(self, x)
    }

    fn csr_copy(&self) -> CsrMatrix {
        self.clone()
    }
}

impl SparseOp for crate::dia::DiaMatrix {
    fn rows(&self) -> usize {
        crate::dia::DiaMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        crate::dia::DiaMatrix::cols(self)
    }

    /// Padded storage (`diagonals × rows`): the scalars a diagonal-wise
    /// pass actually streams.
    fn nnz(&self) -> usize {
        self.num_diagonals() * crate::dia::DiaMatrix::rows(self)
    }

    /// Row-wise gather across the stored diagonals in ascending offset
    /// (= ascending column) order. Note the *inherent*
    /// [`crate::dia::DiaMatrix::mul_vec_into`] runs diagonal-wise — the
    /// CYBER §3.1 order, one long multiply-add per diagonal — and sums
    /// each row in a different order; the trait path deliberately uses the
    /// row-wise order so it is exchangeable with the other formats.
    fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        assert_eq!(x.len(), self.cols(), "dia range mul: x length mismatch");
        assert!(
            rows.end <= crate::dia::DiaMatrix::rows(self),
            "dia range mul: rows out of bounds"
        );
        assert_eq!(y.len(), rows.len(), "dia range mul: y length mismatch");
        let cols = self.cols() as isize;
        for (k, i) in rows.enumerate() {
            let mut acc = 0.0;
            for (s, &d) in self.offsets().iter().enumerate() {
                let j = i as isize + d;
                if j >= 0 && j < cols {
                    acc += self.diagonal(s)[i] * x[j as usize];
                }
            }
            y[k] = acc;
        }
    }

    fn mul_vec_axpy_range(&self, a: f64, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        assert_eq!(x.len(), self.cols(), "dia range axpy: x length mismatch");
        assert!(
            rows.end <= crate::dia::DiaMatrix::rows(self),
            "dia range axpy: rows out of bounds"
        );
        assert_eq!(y.len(), rows.len(), "dia range axpy: y length mismatch");
        let cols = self.cols() as isize;
        for (k, i) in rows.enumerate() {
            let mut acc = 0.0;
            for (s, &d) in self.offsets().iter().enumerate() {
                let j = i as isize + d;
                if j >= 0 && j < cols {
                    acc += self.diagonal(s)[i] * x[j as usize];
                }
            }
            y[k] += a * acc;
        }
    }

    /// Skips zero values: dense diagonal storage cannot distinguish a
    /// stored zero from structural padding.
    fn visit_row(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
        let cols = self.cols() as isize;
        for (s, &d) in self.offsets().iter().enumerate() {
            let j = i as isize + d;
            if j >= 0 && j < cols {
                let v = self.diagonal(s)[i];
                if v != 0.0 {
                    visit(j as usize, v);
                }
            }
        }
    }
}

impl SparseOp for crate::dense::DenseMatrix {
    fn rows(&self) -> usize {
        crate::dense::DenseMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        crate::dense::DenseMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        crate::dense::DenseMatrix::rows(self) * self.cols()
    }

    fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        assert_eq!(x.len(), self.cols(), "dense range mul: x length mismatch");
        assert!(
            rows.end <= crate::dense::DenseMatrix::rows(self),
            "dense range mul: rows out of bounds"
        );
        assert_eq!(y.len(), rows.len(), "dense range mul: y length mismatch");
        for (k, i) in rows.enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (j, &v) in row.iter().enumerate() {
                acc += v * x[j];
            }
            y[k] = acc;
        }
    }

    fn mul_vec_axpy_range(&self, a: f64, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        assert_eq!(x.len(), self.cols(), "dense range axpy: x length mismatch");
        assert!(
            rows.end <= crate::dense::DenseMatrix::rows(self),
            "dense range axpy: rows out of bounds"
        );
        assert_eq!(y.len(), rows.len(), "dense range axpy: y length mismatch");
        for (k, i) in rows.enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (j, &v) in row.iter().enumerate() {
                acc += v * x[j];
            }
            y[k] += a * acc;
        }
    }

    /// Skips exact zeros, so the CSR copy of a mostly-zero dense matrix is
    /// genuinely sparse.
    fn visit_row(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
        for (j, &v) in self.row(i).iter().enumerate() {
            if v != 0.0 {
                visit(j, v);
            }
        }
    }
}

/// Row-shape irregularity at which [`AutoOp`] prefers SELL-C-σ: the
/// longest row carries at least this many times the mean row length.
pub const AUTO_WIDE_ROW_RATIO: usize = 4;

/// Padding budget for the automatic choice: a SELL-C-σ conversion whose
/// padded storage exceeds the stored entries by more than this fraction is
/// discarded in favor of CSR (the σ-sort failed to homogenize the slices,
/// so the padding would cost more than the layout wins).
pub const AUTO_MAX_PADDING: f64 = 0.5;

/// An operator whose storage format is chosen at construction: CSR for
/// regular row shapes, SELL-C-σ for wide/irregular rows, with the choice
/// pinnable through the `MSPCG_FORCE_FORMAT` environment variable
/// ([`tuning::forced_format`]). Consumers stay generic over [`SparseOp`];
/// `AutoOp` is the convenience dispatcher for callers that want the
/// library to decide.
#[derive(Debug, Clone)]
pub enum AutoOp {
    /// Compressed sparse row.
    Csr(CsrMatrix),
    /// Sliced ELL with sorting.
    SellCs(SellCsMatrix),
}

impl AutoOp {
    /// Choose a format for `a`: the `MSPCG_FORCE_FORMAT` override wins;
    /// otherwise SELL-C-σ is selected when the longest row is at least
    /// [`AUTO_WIDE_ROW_RATIO`] × the mean row length (the wide-row shapes
    /// whose chunk imbalance SELL-C-σ exists to fix) **and** the converted
    /// padding overhead stays within [`AUTO_MAX_PADDING`]; CSR otherwise.
    ///
    /// A SELL-C-σ conversion — forced or heuristic — takes its `(C, σ)`
    /// from [`crate::sellcs::autotune_params`], which scans the row-length
    /// histogram instead of assuming the fixed defaults: uniform shapes
    /// get the widest slices with no sorting, heavy-tailed shapes whatever
    /// sliced layout measures the least padding.
    pub fn from_csr(a: CsrMatrix) -> AutoOp {
        match tuning::forced_format() {
            Some(MatrixFormat::Csr) => return AutoOp::Csr(a),
            Some(MatrixFormat::SellCs) => {
                return AutoOp::SellCs(SellCsMatrix::from_csr_autotuned(&a))
            }
            None => {}
        }
        let rows = CsrMatrix::rows(&a);
        if rows == 0 || CsrMatrix::nnz(&a) == 0 {
            return AutoOp::Csr(a);
        }
        let mean = CsrMatrix::nnz(&a).div_ceil(rows);
        if a.max_row_nnz() >= AUTO_WIDE_ROW_RATIO * mean.max(1) {
            let sell = SellCsMatrix::from_csr_autotuned(&a);
            if sell.padding_ratio() <= AUTO_MAX_PADDING {
                return AutoOp::SellCs(sell);
            }
        }
        AutoOp::Csr(a)
    }

    /// Which format was chosen.
    pub fn format(&self) -> MatrixFormat {
        match self {
            AutoOp::Csr(_) => MatrixFormat::Csr,
            AutoOp::SellCs(_) => MatrixFormat::SellCs,
        }
    }
}

macro_rules! auto_dispatch {
    ($self:ident, $m:ident ( $($arg:expr),* )) => {
        match $self {
            AutoOp::Csr(a) => SparseOp::$m(a, $($arg),*),
            AutoOp::SellCs(a) => SparseOp::$m(a, $($arg),*),
        }
    };
}

impl SparseOp for AutoOp {
    fn rows(&self) -> usize {
        auto_dispatch!(self, rows())
    }

    fn cols(&self) -> usize {
        auto_dispatch!(self, cols())
    }

    fn nnz(&self) -> usize {
        auto_dispatch!(self, nnz())
    }

    fn mul_vec_range_into(&self, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        auto_dispatch!(self, mul_vec_range_into(x, y, rows))
    }

    fn mul_vec_axpy_range(&self, a: f64, x: &[f64], y: &mut [f64], rows: Range<usize>) {
        auto_dispatch!(self, mul_vec_axpy_range(a, x, y, rows))
    }

    fn visit_row(&self, i: usize, visit: &mut dyn FnMut(usize, f64)) {
        auto_dispatch!(self, visit_row(i, visit))
    }

    fn chunk_rows(&self, chunk_nnz: usize, c: usize) -> Range<usize> {
        auto_dispatch!(self, chunk_rows(chunk_nnz, c))
    }

    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        auto_dispatch!(self, mul_vec_into(x, y))
    }

    fn mul_vec_axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        auto_dispatch!(self, mul_vec_axpy(a, x, y))
    }

    fn diag_into(&self, out: &mut [f64]) {
        auto_dispatch!(self, diag_into(out))
    }

    fn csr_copy(&self) -> CsrMatrix {
        auto_dispatch!(self, csr_copy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::dia::DiaMatrix;

    fn sample() -> CsrMatrix {
        let mut a = CooMatrix::new(4, 4);
        for i in 0..4 {
            a.push(i, i, 4.0).unwrap();
            if i + 1 < 4 {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        a.to_csr()
    }

    /// SpMV through a generic `A: SparseOp` — the call shape the solver
    /// stack uses after the refactor.
    fn generic_spmv<A: SparseOp>(a: &A, x: &[f64]) -> Vec<f64> {
        a.mul_vec(x)
    }

    #[test]
    fn trait_dispatch_matches_inherent_for_csr() {
        let a = sample();
        let x = [1.0, -2.0, 0.5, 3.0];
        assert_eq!(generic_spmv(&a, &x), CsrMatrix::mul_vec(&a, &x));
        assert_eq!(SparseOp::nnz(&a), CsrMatrix::nnz(&a));
        assert_eq!(SparseOp::dims(&a), (4, 4));
    }

    #[test]
    fn dia_and_dense_agree_with_csr_through_the_trait() {
        let a = sample();
        let dia = DiaMatrix::from_csr(&a);
        let dense = a.to_dense();
        let x = [0.25, -1.0, 2.0, 0.125];
        let want = CsrMatrix::mul_vec(&a, &x);
        // Power-of-two data: the row-wise gathers agree exactly.
        assert_eq!(generic_spmv(&dia, &x), want);
        assert_eq!(generic_spmv(&dense, &x), want);
        let mut acc1 = vec![1.0; 4];
        let mut acc2 = vec![1.0; 4];
        SparseOp::mul_vec_axpy(&dia, -2.0, &x, &mut acc1);
        SparseOp::mul_vec_axpy(&dense, -2.0, &x, &mut acc2);
        assert_eq!(acc1, acc2);
    }

    #[test]
    fn default_chunk_rows_partition_all_rows() {
        let dense = crate::dense::DenseMatrix::identity(300);
        let (chunk_nnz, nchunks) = par::spmv_layout(SparseOp::nnz(&dense));
        let mut covered = Vec::new();
        for c in 0..nchunks {
            let r = SparseOp::chunk_rows(&dense, chunk_nnz, c);
            assert!(r.start <= r.end);
            covered.extend(r);
        }
        assert_eq!(covered, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn diag_into_and_csr_copy_round_trip() {
        let a = sample();
        let dia = DiaMatrix::from_csr(&a);
        let mut d = vec![0.0; 4];
        SparseOp::diag_into(&dia, &mut d);
        assert_eq!(d, vec![4.0; 4]);
        assert_eq!(SparseOp::csr_copy(&dia), a);
        assert_eq!(SparseOp::csr_copy(&a), a);
        assert_eq!(SparseOp::csr_copy(&a.to_dense()), a);
    }

    #[test]
    fn auto_op_keeps_csr_for_regular_rows() {
        let auto = AutoOp::from_csr(sample());
        if tuning::forced_format().is_none() {
            assert_eq!(auto.format(), MatrixFormat::Csr);
        }
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(generic_spmv(&auto, &x), CsrMatrix::mul_vec(&sample(), &x));
    }

    #[test]
    fn auto_op_picks_sellcs_for_arrow_matrix() {
        // Dense head rows over a sparse body: the wide-row family. A full
        // slice of dense rows keeps the padding budget honest (2 dense
        // rows sharing a slice with 6 short ones would be rejected by the
        // padding check, correctly).
        let n = 600usize;
        let head = 8usize;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 8.0).unwrap();
        }
        for d in 0..head {
            for j in head..n {
                coo.push_sym(d, j, -1e-3 * (d + 1) as f64).unwrap();
            }
        }
        let a = coo.to_csr();
        let auto = AutoOp::from_csr(a.clone());
        if tuning::forced_format().is_none() {
            assert_eq!(auto.format(), MatrixFormat::SellCs);
        }
        let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 * 0.25).collect();
        let want = CsrMatrix::mul_vec(&a, &x);
        let got = generic_spmv(&auto, &x);
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
