//! Coordinate (triplet) format — the assembly-friendly builder.
//!
//! Finite-element assembly (see `mspcg-fem`) naturally produces duplicate
//! `(row, col, value)` contributions, one per element sharing a node pair.
//! [`CooMatrix`] accumulates them and [`CooMatrix::to_csr`] compresses into
//! sorted, deduplicated CSR.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A sparse matrix under construction, stored as unsorted triplets.
#[derive(Debug, Clone)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// New empty builder of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// New builder with pre-reserved triplet capacity (FEM assembly knows
    /// `elements × entries-per-element` in advance).
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (possibly duplicated) triplets pushed so far.
    pub fn triplet_count(&self) -> usize {
        self.entries.len()
    }

    /// Add `value` at `(row, col)`. Duplicates accumulate on compression.
    ///
    /// # Errors
    /// [`SparseError::IndexOutOfBounds`] if the coordinates exceed the shape.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.rows {
            return Err(SparseError::IndexOutOfBounds {
                index: row,
                bound: self.rows,
                axis: "row",
            });
        }
        if col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                index: col,
                bound: self.cols,
                axis: "col",
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Add a symmetric pair: `value` at `(i, j)` and at `(j, i)`.
    /// Diagonal entries (`i == j`) are added once.
    ///
    /// # Errors
    /// Same as [`CooMatrix::push`].
    pub fn push_sym(&mut self, i: usize, j: usize, value: f64) -> Result<(), SparseError> {
        self.push(i, j, value)?;
        if i != j {
            self.push(j, i, value)?;
        }
        Ok(())
    }

    /// Compress into CSR: triplets are sorted by `(row, col)`, duplicates
    /// summed, and entries whose accumulated magnitude is exactly zero are
    /// kept (FEM cancellation keeping the symbolic stencil is intentional —
    /// the multicolor solver relies on the structural pattern).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut triplets = self.entries.clone();
        triplets.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(triplets.len());

        let mut iter = triplets.into_iter().peekable();
        while let Some((r, c, v)) = iter.next() {
            let mut acc = v;
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    acc += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            col_idx.push(c);
            values.push(acc);
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("COO compression produced valid CSR")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut a = CooMatrix::new(2, 3);
        assert!(matches!(
            a.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { axis: "row", .. })
        ));
        assert!(matches!(
            a.push(0, 3, 1.0),
            Err(SparseError::IndexOutOfBounds { axis: "col", .. })
        ));
    }

    #[test]
    fn duplicates_accumulate() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, 1.0).unwrap();
        a.push(0, 0, 2.5).unwrap();
        a.push(1, 0, -1.0).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 0), 3.5);
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn push_sym_adds_mirror_entry_once_for_diagonal() {
        let mut a = CooMatrix::new(3, 3);
        a.push_sym(0, 1, 2.0).unwrap();
        a.push_sym(2, 2, 5.0).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(1, 0), 2.0);
        assert_eq!(csr.get(2, 2), 5.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn empty_matrix_compresses() {
        let a = CooMatrix::new(4, 4);
        let csr = a.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rows(), 4);
        let y = csr.mul_vec(&[1.0; 4]);
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    fn columns_sorted_after_compression() {
        let mut a = CooMatrix::new(1, 5);
        for &c in &[4usize, 1, 3, 0, 2] {
            a.push(0, c, c as f64).unwrap();
        }
        let csr = a.to_csr();
        let cols: Vec<usize> = csr.row_entries(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn with_capacity_reserves() {
        let a = CooMatrix::with_capacity(2, 2, 64);
        assert_eq!(a.triplet_count(), 0);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
    }
}
