//! Data-parallel execution engine for the numeric kernels.
//!
//! The multicolor machinery of the paper makes every hot loop of the m-step
//! SSOR PCG *embarrassingly parallel per color block* (rows within one color
//! update independently) and every BLAS-1 kernel embarrassingly parallel per
//! element. This module provides the shared substrate the kernels in
//! [`crate::vecops`], [`crate::csr`] and `mspcg-core`'s multicolor SSOR run
//! on:
//!
//! * a **persistent worker pool** built on `std` threads (no external
//!   runtime), woken per kernel launch and parked in between,
//! * **fixed chunking**: every kernel splits its index space into chunks
//!   whose boundaries depend only on the problem size — *never* on the
//!   thread count — and distributes whole chunks to workers,
//! * **deterministic reductions**: dot products and norms accumulate one
//!   partial per chunk and combine the partials in ascending chunk order,
//!   so the result is bitwise identical for 1, 2, 4 or 8 threads, and
//!   bitwise identical between the serial and parallel code paths,
//! * an **adaptive serial fallback**: kernels below a work threshold (or
//!   when one thread is configured) run inline with zero synchronization.
//!
//! ## Feature gating
//!
//! With the `par` feature disabled the pool is compiled out entirely and
//! every entry point degenerates to the serial path; results are unchanged
//! because the chunked reduction layout is shared by both paths.
//!
//! ## Thread count
//!
//! The pool holds a fixed set of workers sized at first use. The *effective*
//! thread count defaults to the hardware parallelism, can be pinned with the
//! `MSPCG_THREADS` environment variable, and can be changed at runtime with
//! [`set_max_threads`] (the determinism tests sweep 1, 2, 4, 8 this way).

use crate::tuning;
use std::ops::Range;

/// Upper bound on reduction partials (and on chunks handed out per kernel
/// launch). Chosen so partial arrays fit on the stack while still giving
/// 16 threads a ≥ 16-way load-balancing margin.
pub const MAX_PARTIALS: usize = 256;

/// Minimum elements per reduction chunk: below this, splitting buys nothing
/// and the partial array would be dominated by loop overhead.
pub const MIN_REDUCTION_CHUNK: usize = 1024;

/// Chunk layout for a deterministic reduction over `n` elements: returns
/// `(chunk_size, num_chunks)` with `num_chunks <= MAX_PARTIALS`. Depends
/// only on `n`, which is what makes the reduction thread-count-insensitive.
#[inline]
pub fn reduction_layout(n: usize) -> (usize, usize) {
    if n == 0 {
        return (1, 0);
    }
    let chunk = n.div_ceil(MAX_PARTIALS).max(MIN_REDUCTION_CHUNK);
    (chunk, n.div_ceil(chunk))
}

/// Chunk layout for **nnz-weighted** sparse row kernels: returns
/// `(chunk_nnz, num_chunks)` so that each chunk covers roughly `chunk_nnz`
/// stored entries rather than a fixed row count. Row-count chunking lets a
/// run of dense-ish rows serialize the pool on irregular FEM matrices; the
/// nnz weighting balances actual work. Depends only on `nnz` (and the
/// process-fixed [`tuning::min_spmv_chunk_nnz`] threshold), never on the
/// thread count, so layouts stay deterministic.
#[inline]
pub fn spmv_layout(nnz: usize) -> (usize, usize) {
    if nnz == 0 {
        return (1, 0);
    }
    let chunk = nnz.div_ceil(MAX_PARTIALS).max(tuning::min_spmv_chunk_nnz());
    (chunk, nnz.div_ceil(chunk))
}

/// Row range owned by nnz-weighted chunk `c` of a CSR matrix with row
/// pointer array `row_ptr`: row `r` belongs to chunk
/// `row_ptr[r] / chunk_nnz` (prefix-sum bucketing), so consecutive chunks
/// hold disjoint, exhaustive, ascending row ranges whose stored-entry
/// counts are within one row of `chunk_nnz`. The final chunk absorbs any
/// trailing empty rows.
#[inline]
pub fn spmv_chunk_rows(row_ptr: &[usize], chunk_nnz: usize, c: usize) -> Range<usize> {
    spmv_chunk_rows_range(row_ptr, 0..row_ptr.len() - 1, chunk_nnz, c)
}

/// [`spmv_chunk_rows`] restricted to the row block `rows` of a prefix-sum
/// array: stored-entry counts are measured relative to
/// `row_ptr[rows.start]`, and `chunk_nnz` must come from
/// `spmv_layout(row_ptr[rows.end] − row_ptr[rows.start])`. This is the
/// schedule the multicolor SSOR color sweeps use — each color block is
/// chunked by the work its rows actually carry, not by row count — and any
/// prefix-sum array works (the SELL-C-σ kernel feeds per-slice prefix
/// sums through the same machinery).
#[inline]
pub fn spmv_chunk_rows_range(
    row_ptr: &[usize],
    rows: Range<usize>,
    chunk_nnz: usize,
    c: usize,
) -> Range<usize> {
    let base = row_ptr[rows.start];
    let nnz = row_ptr[rows.end] - base;
    let (_, nchunks) = spmv_layout(nnz);
    let blk = &row_ptr[rows.start..rows.end];
    let lo = rows.start + blk.partition_point(|&x| x - base < c * chunk_nnz);
    let hi = if c + 1 >= nchunks {
        rows.end
    } else {
        rows.start + blk.partition_point(|&x| x - base < (c + 1) * chunk_nnz)
    };
    lo..hi
}

/// A shared mutable `f64` slice for disjoint-index parallel writes.
///
/// The multicolor contract ("each row inside a color block is written by
/// exactly one chunk, reads touch only other blocks") cannot be expressed
/// with `&mut` splitting, so — exactly like `mspcg-parallel`'s `SharedVec`
/// — writers go through raw-pointer accessors whose safety contracts
/// restate the discipline.
pub struct ParSlice<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [f64]>,
}

// SAFETY: all access goes through the `unsafe` accessors below, whose
// contracts require disjoint writes and no read/write overlap within one
// parallel region; regions are separated by the pool's completion barrier.
unsafe impl Sync for ParSlice<'_> {}
unsafe impl Send for ParSlice<'_> {}

impl<'a> ParSlice<'a> {
    /// Wrap a mutable slice for the duration of one parallel region.
    pub fn new(data: &'a mut [f64]) -> Self {
        ParSlice {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No chunk may concurrently write index `i` in this parallel region.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        // SAFETY: in-bounds by the debug assert; no concurrent writer by
        // the forwarded contract.
        unsafe { *self.ptr.add(i) }
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// Index `i` must be written by at most one chunk in this parallel
    /// region, and not read concurrently.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        // SAFETY: as above.
        unsafe { *self.ptr.add(i) = v }
    }

    /// Exclusive subslice for one chunk.
    ///
    /// # Safety
    /// `range` must be disjoint from every other chunk's write range and
    /// not read concurrently during this parallel region.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [f64] {
        debug_assert!(range.end <= self.len);
        // SAFETY: disjointness by the forwarded contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }
}

/// Parse an `MSPCG_THREADS` value: `Some(n)` for a positive integer,
/// `None` for anything else (`0`, empty, non-numeric, overflow). A budget
/// of zero threads is meaningless — it would describe an empty pool — so
/// it is invalid rather than silently promoted. Shares the
/// [`tuning::parse_positive`] rules with every other `MSPCG_*` knob.
pub fn parse_thread_budget(raw: &str) -> Option<usize> {
    tuning::parse_positive(raw)
}

/// Effective thread count for a kernel touching `work` scalar items: 1 when
/// parallelism is disabled, unconfigured, or the kernel is too small to
/// amortize a pool launch.
#[inline]
pub fn threads_for(work: usize, min_work: usize) -> usize {
    let t = max_threads();
    if t <= 1 || work < min_work {
        1
    } else {
        t
    }
}

/// Run `body(chunk_index)` for every chunk in `0..nchunks`, distributing
/// whole chunks across `threads` participants (the calling thread plus
/// pool workers). With `threads <= 1` or a single chunk the loop runs
/// inline. Chunks are claimed through a shared counter, so *which thread*
/// runs a chunk varies — the kernels must only depend on chunk boundaries,
/// which are fixed by the layout functions.
pub fn for_each_chunk(nchunks: usize, threads: usize, body: &(dyn Fn(usize) + Sync)) {
    if threads <= 1 || nchunks <= 1 {
        for c in 0..nchunks {
            body(c);
        }
        return;
    }
    imp::run_chunked(nchunks, threads, body);
}

pub use imp::{max_threads, pool_capacity, serialized, set_max_threads};

#[cfg(feature = "par")]
mod imp {
    //! The persistent worker pool (compiled only with the `par` feature).

    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

    /// Erased job pointer handed to the workers. The lifetime is erased;
    /// soundness comes from `broadcast` blocking until every participant
    /// has finished before returning (so the borrow outlives all uses).
    #[derive(Clone, Copy)]
    struct JobPtr(*const (dyn Fn() + Sync + 'static));
    // SAFETY: the pointee is Sync and outlives the job (see above).
    unsafe impl Send for JobPtr {}

    struct JobState {
        /// Bumped once per broadcast; workers sleep until it changes.
        epoch: u64,
        /// Workers allowed to join the current job (worker index < limit).
        limit: usize,
        /// Participating workers that have not yet finished.
        active: usize,
        job: Option<JobPtr>,
    }

    struct Shared {
        state: Mutex<JobState>,
        work_cv: Condvar,
        done_cv: Condvar,
        panicked: AtomicBool,
    }

    struct Pool {
        shared: &'static Shared,
        /// Workers + the calling thread.
        capacity: usize,
        /// Serializes broadcasts from different calling threads.
        run_lock: Mutex<()>,
    }

    fn lock(m: &Mutex<JobState>) -> MutexGuard<'_, JobState> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Execution slots the pool will have once spawned. Pure — consulting
    /// it must not construct the pool, so serial-only processes (small
    /// kernels, `MSPCG_THREADS=1`) never spawn idle workers.
    fn capacity() -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        // Keep at least 8 slots so the determinism tests can exercise
        // real multi-thread schedules even on small CI boxes.
        hw.clamp(8, 16)
    }

    fn pool() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let capacity = capacity();
            let shared: &'static Shared = Box::leak(Box::new(Shared {
                state: Mutex::new(JobState {
                    epoch: 0,
                    limit: 0,
                    active: 0,
                    job: None,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                panicked: AtomicBool::new(false),
            }));
            for w in 1..capacity {
                std::thread::Builder::new()
                    .name(format!("mspcg-par-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("failed to spawn pool worker");
            }
            Pool {
                shared,
                capacity,
                run_lock: Mutex::new(()),
            }
        })
    }

    fn worker_loop(shared: &'static Shared, index: usize) {
        let mut last_epoch = 0u64;
        loop {
            let job = {
                let mut st = lock(&shared.state);
                while st.epoch == last_epoch {
                    st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                last_epoch = st.epoch;
                if index < st.limit {
                    st.job
                } else {
                    None
                }
            };
            let Some(job) = job else { continue };
            // Mark this thread as inside a job so that kernels launched
            // *from* the job body run inline instead of re-entering the
            // pool (which would deadlock on the run lock).
            IN_JOB.with(|c| c.set(true));
            // SAFETY: `broadcast` keeps the closure alive until `active`
            // drains to zero, which happens only after this call returns.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)() }));
            IN_JOB.with(|c| c.set(false));
            if result.is_err() {
                shared.panicked.store(true, Ordering::Release);
            }
            let mut st = lock(&shared.state);
            st.active -= 1;
            if st.active == 0 {
                shared.done_cv.notify_all();
            }
        }
    }

    thread_local! {
        /// Set while this thread executes inside a pool job — nested kernel
        /// launches then run inline instead of deadlocking on the run lock.
        static IN_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    /// Run `f` once on the calling thread and once on each of
    /// `participants - 1` workers, returning after all have finished.
    fn broadcast(participants: usize, f: &(dyn Fn() + Sync)) {
        let pool = pool();
        let workers = participants.min(pool.capacity).saturating_sub(1);
        if workers == 0 || IN_JOB.with(|c| c.get()) {
            f();
            return;
        }
        let _serial = pool.run_lock.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: lifetime erasure is sound because this function does not
        // return until `active == 0`, i.e. until no worker can touch `f`.
        let job = unsafe {
            JobPtr(std::mem::transmute::<
                *const (dyn Fn() + Sync),
                *const (dyn Fn() + Sync + 'static),
            >(f as *const (dyn Fn() + Sync)))
        };
        {
            let mut st = lock(&pool.shared.state);
            st.job = Some(job);
            st.limit = workers + 1;
            st.active = workers;
            st.epoch = st.epoch.wrapping_add(1);
            pool.shared.work_cv.notify_all();
        }
        IN_JOB.with(|c| c.set(true));
        let main_result = std::panic::catch_unwind(AssertUnwindSafe(f));
        IN_JOB.with(|c| c.set(false));
        {
            let mut st = lock(&pool.shared.state);
            while st.active > 0 {
                st = pool
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
        }
        // Consume the worker-panic flag *before* resuming a main-thread
        // panic: if both sides panicked (the common case — they ran the
        // same closure), a caught main panic must not leave the flag set
        // to poison the next unrelated kernel launch.
        let worker_panicked = pool.shared.panicked.swap(false, Ordering::AcqRel);
        if let Err(p) = main_result {
            std::panic::resume_unwind(p);
        }
        if worker_panicked {
            panic!("mspcg-par: a pool worker panicked inside a parallel kernel");
        }
    }

    pub(super) fn run_chunked(nchunks: usize, threads: usize, body: &(dyn Fn(usize) + Sync)) {
        let next = AtomicUsize::new(0);
        broadcast(threads.min(nchunks), &|| loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            body(c);
        });
    }

    fn default_threads() -> usize {
        // An empty value (`MSPCG_THREADS= cargo test`) counts as unset.
        if let Ok(v) = std::env::var("MSPCG_THREADS").map(|v| v.trim().to_owned()) {
            if !v.is_empty() {
                // Invalid values (`0`, non-numeric) used to be accepted
                // silently — `0` clamped up, garbage fell through to the
                // hardware default, both masking a misconfiguration. Fail
                // loudly in debug builds and pin the budget to a single
                // thread otherwise, which is the conservative reading of
                // "the user asked for almost no parallelism".
                return match super::parse_thread_budget(&v) {
                    Some(n) => n.min(pool_capacity()),
                    None => {
                        debug_assert!(false, "MSPCG_THREADS must be a positive integer, got {v:?}");
                        1
                    }
                };
            }
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(pool_capacity())
    }

    fn threads_cell() -> &'static AtomicUsize {
        static THREADS: OnceLock<AtomicUsize> = OnceLock::new();
        THREADS.get_or_init(|| AtomicUsize::new(default_threads()))
    }

    /// Total execution slots (workers + the calling thread). Pure: does
    /// not spawn the pool — workers start at the first parallel launch.
    pub fn pool_capacity() -> usize {
        capacity()
    }

    /// Effective thread budget for parallel kernels.
    pub fn max_threads() -> usize {
        threads_cell().load(Ordering::Relaxed)
    }

    /// Set the thread budget (clamped to `1..=pool_capacity()`). Intended
    /// for experiments and the determinism test sweep; kernels pick it up
    /// on their next launch.
    pub fn set_max_threads(n: usize) {
        threads_cell().store(n.clamp(1, pool_capacity()), Ordering::Relaxed);
    }

    /// Run `f` with pool launches from this thread forced inline: any
    /// kernel `f` calls executes serially on the calling thread. For code
    /// that manages its own threads (e.g. the SPMD solver's workers) and
    /// wants the shared kernels without contending for the pool.
    pub fn serialized<R>(f: impl FnOnce() -> R) -> R {
        struct Restore(bool);
        impl Drop for Restore {
            fn drop(&mut self) {
                IN_JOB.with(|c| c.set(self.0));
            }
        }
        let _guard = Restore(IN_JOB.with(|c| c.replace(true)));
        f()
    }
}

#[cfg(not(feature = "par"))]
mod imp {
    //! Serial stand-ins when the `par` feature is disabled.

    pub(super) fn run_chunked(nchunks: usize, _threads: usize, body: &(dyn Fn(usize) + Sync)) {
        for c in 0..nchunks {
            body(c);
        }
    }

    /// Always 1 without the `par` feature.
    pub fn pool_capacity() -> usize {
        1
    }

    /// Always 1 without the `par` feature.
    pub fn max_threads() -> usize {
        1
    }

    /// No-op without the `par` feature.
    pub fn set_max_threads(_n: usize) {}

    /// Without the `par` feature every kernel is already serial.
    pub fn serialized<R>(f: impl FnOnce() -> R) -> R {
        f()
    }
}

/// Serializes tests that sweep the global thread budget, so concurrent
/// test threads cannot interleave `set_max_threads` calls with assertions
/// on `max_threads()` itself.
#[cfg(test)]
pub(crate) fn thread_sweep_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn reduction_layout_is_size_only() {
        let (c0, n0) = reduction_layout(0);
        assert_eq!((c0, n0), (1, 0));
        let (c, k) = reduction_layout(10);
        assert_eq!((c, k), (MIN_REDUCTION_CHUNK, 1));
        let (c, k) = reduction_layout(1 << 20);
        assert!(k <= MAX_PARTIALS);
        assert!(c * k >= 1 << 20);
        assert!(c * (k - 1) < 1 << 20);
    }

    #[test]
    fn spmv_layout_is_size_only() {
        assert_eq!(spmv_layout(0), (1, 0));
        let (c, k) = spmv_layout(100);
        assert_eq!((c, k), (tuning::min_spmv_chunk_nnz(), 1));
        let (c, k) = spmv_layout(1 << 22);
        assert!(k <= MAX_PARTIALS);
        assert!(c * k >= 1 << 22);
        assert!(c * (k - 1) < 1 << 22);
    }

    #[test]
    fn spmv_chunk_rows_partition_by_nnz_not_row_count() {
        // 6 rows: one dense-ish row up front, then sparse rows. Row-count
        // chunking would pair the dense row with half the sparse ones;
        // nnz weighting must isolate it.
        let row_ptr = vec![0usize, 1000, 1002, 1004, 1006, 1008, 1010];
        let chunk = 512usize;
        let nchunks = 1010usize.div_ceil(chunk);
        let mut covered = Vec::new();
        let mut prev_end = 0usize;
        for c in 0..nchunks {
            let r = spmv_chunk_rows(&row_ptr, chunk, c);
            assert_eq!(r.start, prev_end, "chunks must be contiguous");
            prev_end = r.end;
            covered.extend(r);
        }
        assert_eq!(covered, (0..6).collect::<Vec<_>>());
        // The dense row sits alone in its first chunk(s): chunk 0 covers
        // only row 0 (its 1000 entries span targets 0 and 512).
        assert_eq!(spmv_chunk_rows(&row_ptr, chunk, 0), 0..1);
    }

    #[test]
    fn spmv_chunk_rows_range_covers_a_block_by_nnz() {
        // Rows 2..6 of this prefix sum form a "color block" whose first row
        // is dense; the block-relative chunks must be contiguous,
        // exhaustive within the block, and split by stored entries.
        let row_ptr = vec![0usize, 5, 10, 1010, 1014, 1018, 1022, 1030];
        let rows = 2usize..6;
        let blk_nnz = row_ptr[rows.end] - row_ptr[rows.start];
        let (chunk_nnz, nchunks) = spmv_layout(blk_nnz);
        let mut covered = Vec::new();
        let mut prev_end = rows.start;
        for c in 0..nchunks {
            let r = spmv_chunk_rows_range(&row_ptr, rows.clone(), chunk_nnz, c);
            assert_eq!(r.start, prev_end, "chunks must be contiguous");
            prev_end = r.end;
            covered.extend(r);
        }
        assert_eq!(covered, rows.clone().collect::<Vec<_>>());
        // Whole-matrix chunking is the rows = 0..n special case.
        let (full_chunk, full_chunks) = spmv_layout(row_ptr[7]);
        for c in 0..full_chunks {
            assert_eq!(
                spmv_chunk_rows(&row_ptr, full_chunk, c),
                spmv_chunk_rows_range(&row_ptr, 0..7, full_chunk, c)
            );
        }
    }

    #[test]
    fn spmv_chunk_rows_absorb_trailing_empty_rows() {
        // Trailing empty rows (row_ptr pinned at nnz) must land in the
        // last chunk, not be dropped.
        let row_ptr = vec![0usize, 600, 1200, 1200, 1200];
        let (chunk, nchunks) = spmv_layout(1200);
        let mut covered = Vec::new();
        for c in 0..nchunks {
            covered.extend(spmv_chunk_rows(&row_ptr, chunk, c));
        }
        assert_eq!(covered, (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn thread_budget_parsing_rejects_invalid() {
        assert_eq!(parse_thread_budget("4"), Some(4));
        assert_eq!(parse_thread_budget(" 2 "), Some(2));
        assert_eq!(parse_thread_budget("0"), None);
        assert_eq!(parse_thread_budget(""), None);
        assert_eq!(parse_thread_budget("abc"), None);
        assert_eq!(parse_thread_budget("-3"), None);
        assert_eq!(parse_thread_budget("2.5"), None);
    }

    #[test]
    fn for_each_chunk_visits_every_chunk_once() {
        for threads in [1usize, 2, 4, 8] {
            let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
            for_each_chunk(hits.len(), threads, &|c| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn par_slice_disjoint_writes() {
        let mut data = vec![0.0f64; 64];
        {
            let ps = ParSlice::new(&mut data);
            for_each_chunk(8, max_threads().max(2), &|c| {
                let range = c * 8..(c + 1) * 8;
                let chunk = unsafe { ps.slice_mut(range.clone()) };
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (range.start + k) as f64;
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn threads_for_respects_threshold() {
        assert_eq!(threads_for(10, 1000), 1);
        let t = threads_for(1_000_000, 1000);
        assert!(t >= 1);
        assert_eq!(t, max_threads());
    }

    #[cfg(feature = "par")]
    #[test]
    fn set_max_threads_round_trips() {
        let _guard = thread_sweep_lock();
        let before = max_threads();
        set_max_threads(2);
        assert_eq!(max_threads(), 2);
        set_max_threads(10_000);
        assert_eq!(max_threads(), pool_capacity());
        set_max_threads(before.max(1));
    }

    #[cfg(feature = "par")]
    #[test]
    fn nested_launch_runs_inline() {
        // A kernel body that itself launches a kernel must not deadlock.
        let outer = AtomicUsize::new(0);
        for_each_chunk(4, 4, &|_| {
            for_each_chunk(4, 4, &|_| {
                outer.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 16);
    }
}
