//! # mspcg-sparse
//!
//! Sparse and dense linear-algebra substrate for the *m-step preconditioned
//! conjugate gradient* workspace (reproduction of Adams, ICPP 1983).
//!
//! The 1983 paper assumes a vendor linear-algebra stack (CYBER vector
//! intrinsics, hand-written FEM kernels). This crate rebuilds the pieces the
//! method actually needs, from scratch:
//!
//! * [`coo::CooMatrix`] — triplet builder used by the FEM assembler,
//! * [`csr::CsrMatrix`] — compressed sparse row storage with sorted columns,
//!   SpMV, symmetric permutation, transpose and structural queries,
//! * [`dia::DiaMatrix`] — storage *by diagonals* and the
//!   Madsen–Rodrigue–Karush diagonal-wise product the CYBER implementation
//!   relies on (§3.1 of the paper),
//! * [`dense::DenseMatrix`] — small dense fallback with Cholesky, LU and a
//!   cyclic Jacobi symmetric eigensolver (used for validation and for the
//!   condition-number experiments),
//! * [`lanczos`] — extreme-eigenvalue estimation for large operators,
//! * [`vecops`] — the BLAS-1 kernels PCG is made of,
//! * [`partition`] — contiguous index partitions (the color blocks of the
//!   multicolor ordering),
//! * [`permute`] — permutation vectors and their action on vectors/matrices.
//!
//! Everything is `f64`; the solvers in `mspcg-core` are deliberately not
//! generic over the scalar so that the hot kernels stay monomorphic and easy
//! for LLVM to vectorize.

// Indexed `for i in 0..n` loops are deliberate throughout the numeric
// kernels: they address several parallel arrays (CSR structure, split
// points, diagonals) by the same row index, where iterator zips would
// obscure the math. Clippy's needless_range_loop lint fires on exactly
// this pattern, so it is allowed crate-wide.
#![allow(clippy::needless_range_loop)]
pub mod coo;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod error;
pub mod lanczos;
pub mod partition;
pub mod permute;
pub mod vecops;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use dia::DiaMatrix;
pub use error::SparseError;
pub use partition::Partition;
pub use permute::Permutation;
