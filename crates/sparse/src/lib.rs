//! # mspcg-sparse
//!
//! Sparse and dense linear-algebra substrate for the *m-step preconditioned
//! conjugate gradient* workspace (reproduction of Adams, ICPP 1983).
//!
//! The 1983 paper assumes a vendor linear-algebra stack (CYBER vector
//! intrinsics, hand-written FEM kernels). This crate rebuilds the pieces the
//! method actually needs, from scratch:
//!
//! * [`op::SparseOp`] — the **operator abstraction** the whole solver
//!   stack is generic over (serial + parallel SpMV entry points, shape and
//!   work queries, chunk-layout scheduling hooks, structure extraction);
//!   [`op::AutoOp`] picks a format automatically,
//! * [`coo::CooMatrix`] — triplet builder used by the FEM assembler,
//! * [`csr::CsrMatrix`] — compressed sparse row storage with sorted columns,
//!   SpMV, symmetric permutation, transpose and structural queries,
//! * [`sellcs::SellCsMatrix`] — SELL-C-σ (sliced ELL with sorting): the
//!   wide-row SpMV layout, lossless CSR round trip, bitwise-identical
//!   products,
//! * [`dia::DiaMatrix`] — storage *by diagonals* and the
//!   Madsen–Rodrigue–Karush diagonal-wise product the CYBER implementation
//!   relies on (§3.1 of the paper),
//! * [`dense::DenseMatrix`] — small dense fallback with Cholesky, LU and a
//!   cyclic Jacobi symmetric eigensolver (used for validation and for the
//!   condition-number experiments),
//! * [`lanczos`] — extreme-eigenvalue estimation for large operators,
//! * [`vecops`] — the BLAS-1 kernels PCG is made of,
//! * [`partition`] — contiguous index partitions (the color blocks of the
//!   multicolor ordering),
//! * [`permute`] — permutation vectors and their action on vectors/matrices,
//! * [`tuning`] — every adaptive threshold, with validated `MSPCG_*`
//!   environment overrides.
//!
//! Everything is `f64`; the solvers in `mspcg-core` are deliberately not
//! generic over the scalar so that the hot kernels stay monomorphic and easy
//! for LLVM to vectorize.
//!
//! ## Performance
//!
//! The hot kernels — CSR SpMV ([`csr::CsrMatrix::mul_vec_into`] /
//! [`csr::CsrMatrix::mul_vec_axpy`]) and the BLAS-1 reductions in
//! [`vecops`] — are **data parallel** behind the `par` feature (on by
//! default). They run on the persistent `std::thread` worker pool in
//! [`par`]; no external runtime is required.
//!
//! *Determinism contract.* Every kernel splits its index space into chunks
//! whose boundaries depend only on the problem size, and every reduction
//! combines per-chunk partials in ascending chunk order. Results are
//! therefore **bitwise identical** across thread counts (1, 2, 4, 8, …)
//! and between the serial and parallel code paths — `cargo test` includes
//! `*_thread_count_insensitive` tests that assert exactly this.
//!
//! *Adaptive fallback.* Kernels below a work threshold
//! ([`tuning::par_min_elems`] elements / [`tuning::par_min_nnz`] stored
//! entries) run serially: waking the pool costs more than the loop. Every
//! threshold lives in [`tuning`] and can be overridden per process with a
//! validated `MSPCG_*` environment variable. Thread budget: hardware
//! parallelism by default, pinned by the `MSPCG_THREADS` environment
//! variable or [`par::set_max_threads`].
//!
//! *Operator formats.* The solver stack is generic over [`op::SparseOp`],
//! so storage is a pure performance decision: CSR is the general-purpose
//! default, and [`sellcs::SellCsMatrix`] (SELL-C-σ) is the layout for
//! **row-length-irregular** matrices — slices of C rows stored
//! lane-contiguous and padded to the slice's widest row, with rows sorted
//! by length inside σ-row windows so slices stay homogeneous. The padding
//! overhead is `Σ_s C·w_s / nnz − 1` (`w_s` = widest row of slice `s`);
//! when the row-length spread within a σ window is small the overhead is
//! near zero, and [`op::AutoOp`] converts automatically only when the
//! longest row is ≥ 4× the mean *and* the measured overhead stays under
//! 50 % (`MSPCG_FORCE_FORMAT` pins the choice). Because every format
//! accumulates each row in ascending column order, products — and whole
//! solver runs — are **bitwise identical** across formats.
//!
//! Build without the feature (`--no-default-features`) for a strictly
//! serial library with identical numerical results. Measure the speedups
//! with `cargo bench -p mspcg-bench --bench spmv` (serial vs parallel
//! groups on a 512×512 red/black Poisson problem, plus CSR vs SELL-C-σ on
//! the wide-row arrow family).

// Indexed `for i in 0..n` loops are deliberate throughout the numeric
// kernels: they address several parallel arrays (CSR structure, split
// points, diagonals) by the same row index, where iterator zips would
// obscure the math. Clippy's needless_range_loop lint fires on exactly
// this pattern, so it is allowed crate-wide.
#![allow(clippy::needless_range_loop)]
pub mod coo;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod error;
pub mod lanczos;
pub mod op;
pub mod par;
pub mod partition;
pub mod permute;
pub mod sellcs;
pub mod tuning;
pub mod vecops;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use dia::DiaMatrix;
pub use error::SparseError;
pub use op::{AutoOp, SparseOp};
pub use partition::Partition;
pub use permute::Permutation;
pub use sellcs::SellCsMatrix;
pub use tuning::{MatrixFormat, PcgVariant, PolyKind, PrecondKind};
