//! Storage by diagonals and the Madsen–Rodrigue–Karush product.
//!
//! §3.1 of the paper: on the CYBER 203/205 the sparse products `K·p` and the
//! block products `B·r̂` are performed with the *multiplication by diagonals*
//! scheme of Madsen, Rodrigue and Karush (1976), because a diagonal of a
//! banded matrix is one long contiguous vector — exactly what the pipeline
//! wants. After the multicolor renumbering the stiffness matrix has a
//! moderate number of occupied diagonals (structure (3.2)), so
//! `y ← A x` becomes one long vector multiply-add per occupied diagonal.
//!
//! [`DiaMatrix`] stores, for each occupied offset `d = j − i`, the dense
//! diagonal `diag_d[i] = A[i][i + d]` (zero-padded where outside the
//! matrix). [`DiaMatrix::mul_vec_into`] is the reference scalar execution;
//! the CYBER simulator in `mspcg-machine` replays the same loop while
//! charging pipeline cycles per diagonal.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// Sparse matrix stored by diagonals (DIA format).
#[derive(Debug, Clone, PartialEq)]
pub struct DiaMatrix {
    rows: usize,
    cols: usize,
    /// Occupied diagonal offsets, ascending.
    offsets: Vec<isize>,
    /// One dense vector of length `rows` per offset:
    /// `diagonals[k][i] = A[i][i + offsets[k]]` (0 outside).
    diagonals: Vec<Vec<f64>>,
}

impl DiaMatrix {
    /// Convert from CSR, storing every occupied diagonal densely.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let offsets = a.diagonal_offsets();
        let mut diagonals = vec![vec![0.0; a.rows()]; offsets.len()];
        // Map offset -> slot.
        let slot: std::collections::BTreeMap<isize, usize> =
            offsets.iter().enumerate().map(|(k, &d)| (d, k)).collect();
        for i in 0..a.rows() {
            for (j, v) in a.row_entries(i) {
                let d = j as isize - i as isize;
                diagonals[slot[&d]][i] = v;
            }
        }
        DiaMatrix {
            rows: a.rows(),
            cols: a.cols(),
            offsets,
            diagonals,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Occupied diagonal offsets (ascending).
    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// Number of occupied diagonals — the CYBER vector-op count per SpMV.
    pub fn num_diagonals(&self) -> usize {
        self.offsets.len()
    }

    /// Dense data of diagonal `k` (aligned to row index).
    pub fn diagonal(&self, k: usize) -> &[f64] {
        &self.diagonals[k]
    }

    /// The length of the *useful* (in-bounds) part of diagonal `k` — the
    /// vector length the pipeline machine would issue for it.
    pub fn diagonal_vector_len(&self, k: usize) -> usize {
        let d = self.offsets[k];
        if d >= 0 {
            self.rows.min(self.cols.saturating_sub(d as usize))
        } else {
            self.cols.min(self.rows.saturating_sub((-d) as usize))
        }
    }

    /// `y ← A x` by diagonals: for each offset `d`,
    /// `y[i] += diag_d[i] · x[i + d]` over the in-bounds range. One fused
    /// multiply-add of a long contiguous vector per diagonal.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dia mul: x length mismatch");
        assert_eq!(y.len(), self.rows, "dia mul: y length mismatch");
        y.fill(0.0);
        for (k, &d) in self.offsets.iter().enumerate() {
            let diag = &self.diagonals[k];
            if d >= 0 {
                let d = d as usize;
                let n = self.rows.min(self.cols.saturating_sub(d));
                for i in 0..n {
                    y[i] += diag[i] * x[i + d];
                }
            } else {
                let d = (-d) as usize;
                let n = self.cols.min(self.rows.saturating_sub(d)) + d;
                for i in d..n.min(self.rows) {
                    y[i] += diag[i] * x[i - d];
                }
            }
        }
    }

    /// Allocating version of [`DiaMatrix::mul_vec_into`].
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Round-trip back to CSR (drops explicit zeros introduced by padding).
    ///
    /// # Errors
    /// Propagates CSR construction errors (cannot occur for valid DIA data).
    pub fn to_csr(&self) -> Result<CsrMatrix, SparseError> {
        let mut coo = crate::coo::CooMatrix::new(self.rows, self.cols);
        for (k, &d) in self.offsets.iter().enumerate() {
            for i in 0..self.rows {
                let j = i as isize + d;
                if j < 0 || j >= self.cols as isize {
                    continue;
                }
                let v = self.diagonals[k][i];
                if v != 0.0 {
                    coo.push(i, j as usize, v)?;
                }
            }
        }
        Ok(coo.to_csr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn tridiag(n: usize) -> CsrMatrix {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        a.to_csr()
    }

    #[test]
    fn from_csr_finds_three_diagonals() {
        let d = DiaMatrix::from_csr(&tridiag(5));
        assert_eq!(d.offsets(), &[-1, 0, 1]);
        assert_eq!(d.num_diagonals(), 3);
    }

    #[test]
    fn dia_spmv_matches_csr() {
        let a = tridiag(7);
        let d = DiaMatrix::from_csr(&a);
        let x: Vec<f64> = (0..7).map(|i| (i as f64).cos()).collect();
        let y_csr = a.mul_vec(&x);
        let y_dia = d.mul_vec(&x);
        for (u, v) in y_csr.iter().zip(&y_dia) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn rectangular_dia_spmv() {
        // 2x4 matrix with entries on offsets 0..=2.
        let mut c = CooMatrix::new(2, 4);
        c.push(0, 0, 1.0).unwrap();
        c.push(0, 2, 3.0).unwrap();
        c.push(1, 1, 2.0).unwrap();
        c.push(1, 3, 4.0).unwrap();
        let a = c.to_csr();
        let d = DiaMatrix::from_csr(&a);
        let x = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(d.mul_vec(&x), a.mul_vec(&x));
    }

    #[test]
    fn round_trip_csr() {
        let a = tridiag(6);
        let d = DiaMatrix::from_csr(&a);
        assert_eq!(d.to_csr().unwrap(), a);
    }

    #[test]
    fn diagonal_vector_lengths() {
        let d = DiaMatrix::from_csr(&tridiag(5));
        // offsets -1, 0, 1 on a 5x5: lengths 4, 5, 4.
        assert_eq!(d.diagonal_vector_len(0), 4);
        assert_eq!(d.diagonal_vector_len(1), 5);
        assert_eq!(d.diagonal_vector_len(2), 4);
    }

    #[test]
    fn multicolor_structure_has_few_diagonals() {
        // A block matrix with diagonal blocks (multicolor structure (3.2))
        // keeps the diagonal count at (#blocks)² worst case, independent of n.
        let n = 12;
        let b = 3;
        let mut c = CooMatrix::new(n, n);
        let bs = n / b;
        for bi in 0..b {
            for bj in 0..b {
                for k in 0..bs {
                    let (i, j) = (bi * bs + k, bj * bs + k);
                    c.push(i, j, 1.0 + (i * n + j) as f64 * 0.01).unwrap();
                }
            }
        }
        let a = c.to_csr();
        let d = DiaMatrix::from_csr(&a);
        assert!(d.num_diagonals() <= b * b);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_eq!(d.mul_vec(&x), a.mul_vec(&x));
    }
}
