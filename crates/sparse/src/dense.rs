//! Small dense matrices: validation oracle and spectral tool.
//!
//! The workspace uses dense linear algebra in three places:
//!
//! 1. **Validation** — integration and property tests compare sparse solver
//!    results against a dense Cholesky direct solve.
//! 2. **Coefficient fitting** — the least-squares α system of §2.2 is a tiny
//!    SPD normal-equations system solved by Cholesky.
//! 3. **Condition-number experiments** (E9 in DESIGN.md) — the cyclic Jacobi
//!    eigensolver computes the full spectrum of `M_m^{-1}K` on small plates
//!    to verify that κ decreases with m.

use crate::error::SparseError;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested row slices.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Self::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `y = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: length mismatch");
        (0..self.rows)
            .map(|i| crate::vecops::dot(self.row(i), x))
            .collect()
    }

    /// Matrix product `A B`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn mul_mat(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, b.rows, "mul_mat: inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Maximum absolute asymmetry `max |A - Aᵀ|`.
    pub fn asymmetry(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                m = m.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        m
    }

    /// Cholesky factorization `A = L Lᵀ` (lower triangular `L`).
    ///
    /// # Errors
    /// [`SparseError::NotSquare`] or [`SparseError::NotPositiveDefinite`].
    pub fn cholesky(&self) -> Result<Cholesky, SparseError> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(SparseError::NotPositiveDefinite { pivot: i, value: s });
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        Ok(Cholesky { n, l })
    }

    /// LU factorization with partial pivoting; returns a solver.
    ///
    /// # Errors
    /// [`SparseError::NotSquare`], or
    /// [`SparseError::NotPositiveDefinite`] when a pivot vanishes (singular).
    pub fn lu(&self) -> Result<Lu, SparseError> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 {
                return Err(SparseError::NotPositiveDefinite {
                    pivot: k,
                    value: 0.0,
                });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                piv.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let f = a[i * n + k] / pivot;
                a[i * n + k] = f;
                for j in (k + 1)..n {
                    a[i * n + j] -= f * a[k * n + j];
                }
            }
        }
        Ok(Lu { n, a, piv })
    }

    /// Full symmetric eigendecomposition by the cyclic Jacobi rotation
    /// method. Returns eigenvalues sorted ascending.
    ///
    /// Intended for small matrices (n ≲ 500): O(n³) per sweep, typically
    /// 6–10 sweeps.
    ///
    /// # Errors
    /// [`SparseError::NotSquare`], [`SparseError::NotSymmetric`] (tolerance
    /// `1e-8 · max|A|`), or [`SparseError::DidNotConverge`].
    pub fn sym_eigenvalues(&self) -> Result<Vec<f64>, SparseError> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let scale = self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if self.asymmetry() > 1e-8 * scale.max(1.0) {
            return Err(SparseError::NotSymmetric { row: 0, col: 0 });
        }
        let n = self.rows;
        if n == 0 {
            return Ok(vec![]);
        }
        let mut a = self.data.clone();
        // Symmetrize exactly to keep rotations clean.
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (a[i * n + j] + a[j * n + i]);
                a[i * n + j] = avg;
                a[j * n + i] = avg;
            }
        }
        let max_sweeps = 64;
        for _sweep in 0..max_sweeps {
            let mut off = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[i * n + j] * a[i * n + j];
                }
            }
            if off.sqrt() <= 1e-14 * scale.max(1e-300) * n as f64 {
                let mut eig: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
                eig.sort_by(|x, y| x.partial_cmp(y).unwrap());
                return Ok(eig);
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[p * n + q];
                    if apq.abs() <= 1e-300 {
                        continue;
                    }
                    let app = a[p * n + p];
                    let aqq = a[q * n + q];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Apply rotation J(p, q, θ)ᵀ A J(p, q, θ).
                    for k in 0..n {
                        let akp = a[k * n + p];
                        let akq = a[k * n + q];
                        a[k * n + p] = c * akp - s * akq;
                        a[k * n + q] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[p * n + k];
                        let aqk = a[q * n + k];
                        a[p * n + k] = c * apk - s * aqk;
                        a[q * n + k] = s * apk + c * aqk;
                    }
                }
            }
        }
        Err(SparseError::DidNotConverge {
            iterations: max_sweeps,
            residual: f64::NAN,
        })
    }

    /// Spectral condition number `λ_max / λ_min` of a symmetric matrix.
    ///
    /// # Errors
    /// Propagates [`DenseMatrix::sym_eigenvalues`] errors, plus
    /// [`SparseError::NotPositiveDefinite`] if `λ_min ≤ 0`.
    pub fn sym_condition_number(&self) -> Result<f64, SparseError> {
        let eig = self.sym_eigenvalues()?;
        let (lo, hi) = (eig[0], eig[eig.len() - 1]);
        if lo <= 0.0 {
            return Err(SparseError::NotPositiveDefinite {
                pivot: 0,
                value: lo,
            });
        }
        Ok(hi / lo)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    /// Solve `A x = b`.
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "cholesky solve: length mismatch");
        let n = self.n;
        let l = &self.l;
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= l[i * n + k] * y[k];
            }
            y[i] /= l[i * n + i];
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= l[k * n + i] * y[k];
            }
            y[i] /= l[i * n + i];
        }
        y
    }

    /// The lower-triangular factor `L` as a dense matrix.
    ///
    /// Used by the condition-number experiments: the eigenvalues of the
    /// preconditioned operator `M⁻¹K` equal those of the *symmetric* matrix
    /// `Lᵀ M⁻¹ L` where `K = L Lᵀ`, which our Jacobi eigensolver can handle.
    pub fn l_matrix(&self) -> DenseMatrix {
        let n = self.n;
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                m[(i, j)] = self.l[i * n + j];
            }
        }
        m
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// log₁₀ of the determinant of `A` (sum of log pivots ×2) — handy for
    /// verifying positive definiteness margins in tests.
    pub fn log10_det(&self) -> f64 {
        let n = self.n;
        2.0 * (0..n).map(|i| self.l[i * n + i].log10()).sum::<f64>()
    }
}

/// LU factors with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    a: Vec<f64>,
    piv: Vec<usize>,
}

impl Lu {
    /// Solve `A x = b`.
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "lu solve: length mismatch");
        let n = self.n;
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.a[i * n + k] * x[k];
            }
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.a[i * n + k] * x[k];
            }
            x[i] /= self.a[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[4.0, -1.0, 0.0], &[-1.0, 4.0, -1.0], &[0.0, -1.0, 4.0]])
    }

    #[test]
    fn cholesky_solves() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = a.cholesky().unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            a.cholesky(),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn lu_solves_unsymmetric() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 3.0], &[2.0, 1.0, 0.0]]);
        let x_true = [3.0, -1.0, 2.0];
        let b = a.mul_vec(&x_true);
        let x = a.lu().unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_detects_singularity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.lu().is_err());
    }

    #[test]
    fn jacobi_eigenvalues_of_known_matrix() {
        // Eigenvalues of tridiag(-1, 4, -1), n = 3: 4 - √2, 4, 4 + √2.
        let eig = spd3().sym_eigenvalues().unwrap();
        let expect = [4.0 - 2f64.sqrt(), 4.0, 4.0 + 2f64.sqrt()];
        for (e, t) in eig.iter().zip(&expect) {
            assert!((e - t).abs() < 1e-10, "{e} vs {t}");
        }
    }

    #[test]
    fn jacobi_rejects_asymmetric() {
        let a = DenseMatrix::from_rows(&[&[1.0, 5.0], &[0.0, 1.0]]);
        assert!(a.sym_eigenvalues().is_err());
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        let k = DenseMatrix::identity(5).sym_condition_number().unwrap();
        assert!((k - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_number_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, -2.0]]);
        assert!(a.sym_condition_number().is_err());
    }

    #[test]
    fn mul_mat_and_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let ab = a.mul_mat(&b);
        assert_eq!(ab[(0, 0)], 2.0);
        assert_eq!(ab[(0, 1)], 1.0);
        assert_eq!(ab[(1, 0)], 4.0);
        assert_eq!(ab[(1, 1)], 3.0);
        let at = a.transpose();
        assert_eq!(at[(0, 1)], 3.0);
    }

    #[test]
    fn log10_det_of_diagonal() {
        let a = DenseMatrix::from_rows(&[&[100.0, 0.0], &[0.0, 10.0]]);
        let c = a.cholesky().unwrap();
        assert!((c.log10_det() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_eigenproblem() {
        let a = DenseMatrix::zeros(0, 0);
        assert_eq!(a.sym_eigenvalues().unwrap(), Vec::<f64>::new());
    }
}
