//! Closed-form colorings of the triangulated rectangular grid.
//!
//! The paper's plate (Fig. 1) is a rectangular node grid where every cell is
//! split into two triangles by its anti-diagonal. The nodes are colored Red,
//! Black, Green so that the three vertices of every triangle carry three
//! different colors; the formula `color(i, j) = (2·i + j) mod 3` achieves
//! this and — when the number of node columns is ≡ 2 (mod 3) — coincides
//! with the paper's "number along each row and wrap R/B/G to the next row"
//! scheme (§3.1 requires the last node of the first row to be Black for the
//! wrap to work; Black is color 1 here).
//!
//! Since the u and v displacement equations at one node couple, the full
//! decoupling needs six colors: Red(u), Red(v), Black(u), Black(v),
//! Green(u), Green(v) — produced by [`six_color_dof_coloring`].

use crate::coloring::Coloring;
use mspcg_sparse::SparseError;

/// The three node colors of the plate coloring, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeColor {
    /// Red nodes (numbered first).
    Red = 0,
    /// Black nodes.
    Black = 1,
    /// Green nodes (numbered last).
    Green = 2,
}

impl NodeColor {
    /// Color of grid node `(row, col)` under the wrap-around R/B/G scheme.
    #[inline]
    pub fn of(row: usize, col: usize) -> NodeColor {
        match (2 * row + col) % 3 {
            0 => NodeColor::Red,
            1 => NodeColor::Black,
            _ => NodeColor::Green,
        }
    }

    /// Single-letter display used by the figure renderer.
    pub fn letter(self) -> char {
        match self {
            NodeColor::Red => 'R',
            NodeColor::Black => 'B',
            NodeColor::Green => 'G',
        }
    }
}

/// R/B/G coloring of a `rows × cols` node grid, nodes numbered row-major
/// bottom-to-top, left-to-right (the paper's numbering).
///
/// # Errors
/// [`SparseError::InvalidPartition`] if the grid is too small to use all
/// three colors (needs at least 3 nodes in the pattern).
pub fn rbg_node_coloring(rows: usize, cols: usize) -> Result<Coloring, SparseError> {
    let mut labels = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            labels.push(NodeColor::of(i, j) as usize);
        }
    }
    Coloring::from_labels(labels, 3)
}

/// Six-color equation coloring for 2 dofs per node (u then v at each node,
/// equation index = `2·node + dof`): Red(u)=0, Red(v)=1, Black(u)=2,
/// Black(v)=3, Green(u)=4, Green(v)=5.
///
/// # Errors
/// Propagates [`rbg_node_coloring`] errors.
pub fn six_color_dof_coloring(rows: usize, cols: usize) -> Result<Coloring, SparseError> {
    rbg_node_coloring(rows, cols)?.refine_per_dof(2)
}

/// True when the anti-diagonal triangulation of the `rows × cols` grid has
/// all-distinct vertex colors on every triangle (used as a sanity check and
/// by property tests; always true for [`NodeColor::of`]).
pub fn triangles_properly_colored(rows: usize, cols: usize) -> bool {
    for i in 0..rows.saturating_sub(1) {
        for j in 0..cols.saturating_sub(1) {
            // Lower triangle: (i, j), (i, j+1), (i+1, j).
            let a = NodeColor::of(i, j);
            let b = NodeColor::of(i, j + 1);
            let c = NodeColor::of(i + 1, j);
            if a == b || b == c || a == c {
                return false;
            }
            // Upper triangle: (i, j+1), (i+1, j+1), (i+1, j).
            let d = NodeColor::of(i + 1, j + 1);
            if b == d || d == c {
                return false;
            }
        }
    }
    true
}

/// Render the colored plate as ASCII (paper Fig. 1), bottom row printed
/// last so the output matches the paper's orientation (row 0 at the
/// bottom).
pub fn render_plate(rows: usize, cols: usize) -> String {
    let mut out = String::new();
    for i in (0..rows).rev() {
        for j in 0..cols {
            out.push(NodeColor::of(i, j).letter());
            if j + 1 < cols {
                out.push_str("---");
            }
        }
        out.push('\n');
        if i > 0 {
            // Anti-diagonal edges: | \ pattern per cell.
            for j in 0..cols {
                out.push('|');
                if j + 1 < cols {
                    out.push_str(" \\ ");
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_row_major_wrap_when_cols_mod3_is_2() {
        // cols ≡ 2 (mod 3): the row-major sequential coloring wraps exactly.
        let cols = 5;
        for rows in 1..5 {
            for i in 0..rows {
                for j in 0..cols {
                    let seq = (i * cols + j) % 3;
                    assert_eq!(NodeColor::of(i, j) as usize, seq);
                }
            }
        }
    }

    #[test]
    fn last_node_of_first_row_is_black_for_wrap_grids() {
        // §3.1: "the last node in the first row must be Black".
        for cols in [5usize, 8, 11, 14] {
            assert_eq!(NodeColor::of(0, cols - 1), NodeColor::Black);
        }
    }

    #[test]
    fn every_triangle_gets_three_colors() {
        for rows in 2..8 {
            for cols in 2..8 {
                assert!(
                    triangles_properly_colored(rows, cols),
                    "bad coloring at {rows}x{cols}"
                );
            }
        }
    }

    #[test]
    fn rbg_coloring_has_three_balanced_classes() {
        let c = rbg_node_coloring(6, 6).unwrap();
        let sizes = c.class_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 36);
        // Balanced to within one node per class.
        assert!(sizes.iter().all(|&s| s == 12));
    }

    #[test]
    fn six_color_refinement_interleaves_dofs() {
        let c = six_color_dof_coloring(2, 2).unwrap();
        assert_eq!(c.num_colors(), 6);
        // Node (0,0) is Red: equations 0 (u) and 1 (v) get colors 0, 1.
        assert_eq!(c.color_of(0), 0);
        assert_eq!(c.color_of(1), 1);
        // Node (0,1) is Black: colors 2, 3.
        assert_eq!(c.color_of(2), 2);
        assert_eq!(c.color_of(3), 3);
    }

    #[test]
    fn render_contains_all_letters() {
        let s = render_plate(3, 5);
        assert!(s.contains('R') && s.contains('B') && s.contains('G'));
        assert_eq!(s.lines().count(), 3 + 2);
    }

    #[test]
    fn tiny_grid_errors_when_a_color_is_missing() {
        // 1x1 grid has only a Red node — three-coloring impossible.
        assert!(rbg_node_coloring(1, 1).is_err());
        assert!(rbg_node_coloring(1, 3).is_ok());
    }
}
