//! # mspcg-coloring
//!
//! Multicolor orderings for parallel relaxation, after **Adams & Ortega,
//! "A Multi-Color SOR Method for Parallel Computation" (ICPP 1982)** — the
//! ordering substrate of the m-step SSOR preconditioner.
//!
//! A *multicolor ordering* partitions the unknowns into color classes such
//! that no two coupled unknowns share a class. Renumbering the system class
//! by class turns every triangular solve of SOR/SSOR into a short sequence
//! of *diagonal* solves — one long vector operation per color on a pipeline
//! machine, one embarrassingly parallel sweep per color on an array.
//!
//! * [`coloring::Coloring`] — a validated color assignment with the derived
//!   permutation/partition pair,
//! * [`grid`] — the closed-form Red/Black/Green coloring of the triangulated
//!   plate (paper Fig. 1) and its 6-color u/v refinement,
//! * [`greedy`] — greedy multicoloring of arbitrary symmetric sparsity
//!   graphs, for the irregular regions the paper lists as future work.

// Indexed `for i in 0..n` loops are deliberate throughout the numeric
// kernels: they address several parallel arrays (CSR structure, split
// points, diagonals) by the same row index, where iterator zips would
// obscure the math. Clippy's needless_range_loop lint fires on exactly
// this pattern, so it is allowed crate-wide.
#![allow(clippy::needless_range_loop)]
pub mod coloring;
pub mod greedy;
pub mod grid;

pub use coloring::{ColorOrdering, Coloring};
pub use greedy::{greedy_coloring, GreedyStrategy};
pub use grid::{rbg_node_coloring, six_color_dof_coloring, NodeColor};
