//! Greedy multicoloring of arbitrary symmetric sparsity graphs.
//!
//! The paper's closing remark: *"A problem still remains in applying the
//! method to irregular regions since the grid must be colored"*. This module
//! supplies that missing piece — a first-fit greedy coloring over the
//! adjacency structure of any symmetric sparse matrix, with selectable
//! vertex orderings. Greedy coloring uses at most `max_degree + 1` colors,
//! and on the plate stencils it typically recovers small color counts
//! (though not always the optimal 3/6 of the structured formula).

use crate::coloring::Coloring;
use mspcg_sparse::{CsrMatrix, SparseError};

/// Vertex visit order for the greedy sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GreedyStrategy {
    /// Natural order `0, 1, …, n−1` (the paper's bottom-to-top,
    /// left-to-right numbering).
    #[default]
    Natural,
    /// Largest-degree-first — classic Welsh–Powell heuristic; tends to use
    /// fewer colors on irregular graphs.
    LargestDegreeFirst,
    /// Smallest-degree-last (the reverse of repeatedly removing a
    /// minimum-degree vertex); strong on planar-ish FEM graphs.
    SmallestDegreeLast,
}

/// Greedily color the adjacency graph of `a` (off-diagonal stored entries
/// define edges). Returns a coloring that is valid for `a` by construction.
///
/// ```
/// use mspcg_coloring::{greedy_coloring, GreedyStrategy};
/// use mspcg_sparse::CooMatrix;
///
/// // A 4-cycle needs two colors.
/// let mut coo = CooMatrix::new(4, 4);
/// for i in 0..4 {
///     coo.push(i, i, 2.0)?;
///     coo.push_sym(i, (i + 1) % 4, -1.0)?;
/// }
/// let a = coo.to_csr();
/// let coloring = greedy_coloring(&a, GreedyStrategy::Natural)?;
/// assert_eq!(coloring.num_colors(), 2);
/// coloring.verify_for(&a)?;
/// # Ok::<(), mspcg_sparse::SparseError>(())
/// ```
///
/// # Errors
/// [`SparseError::NotSquare`] for rectangular input.
pub fn greedy_coloring(a: &CsrMatrix, strategy: GreedyStrategy) -> Result<Coloring, SparseError> {
    if a.rows() != a.cols() {
        return Err(SparseError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Coloring::from_labels(vec![], 0);
    }
    let order = visit_order(a, strategy);
    let mut labels = vec![usize::MAX; n];
    let mut num_colors = 0usize;
    // Scratch: forbidden[c] == stamp means color c is taken by a neighbour.
    let mut forbidden: Vec<usize> = Vec::new();
    for (stamp, &v) in order.iter().enumerate() {
        let stamp = stamp + 1;
        for (u, w) in a.row_entries(v) {
            if u != v && w != 0.0 {
                let c = labels[u];
                if c != usize::MAX {
                    if c >= forbidden.len() {
                        forbidden.resize(c + 1, 0);
                    }
                    forbidden[c] = stamp;
                }
            }
        }
        let mut c = 0usize;
        while c < forbidden.len() && forbidden[c] == stamp {
            c += 1;
        }
        labels[v] = c;
        num_colors = num_colors.max(c + 1);
    }
    Coloring::from_labels(labels, num_colors)
}

fn visit_order(a: &CsrMatrix, strategy: GreedyStrategy) -> Vec<usize> {
    let n = a.rows();
    let degree = |v: usize| -> usize {
        a.row_entries(v)
            .filter(|&(u, w)| u != v && w != 0.0)
            .count()
    };
    match strategy {
        GreedyStrategy::Natural => (0..n).collect(),
        GreedyStrategy::LargestDegreeFirst => {
            let mut order: Vec<usize> = (0..n).collect();
            let degs: Vec<usize> = (0..n).map(degree).collect();
            order.sort_by(|&x, &y| degs[y].cmp(&degs[x]).then(x.cmp(&y)));
            order
        }
        GreedyStrategy::SmallestDegreeLast => {
            // Repeatedly remove a minimum-residual-degree vertex; color in
            // reverse removal order.
            let mut residual: Vec<isize> = (0..n).map(|v| degree(v) as isize).collect();
            let mut removed = vec![false; n];
            let mut removal = Vec::with_capacity(n);
            for _ in 0..n {
                let v = (0..n)
                    .filter(|&v| !removed[v])
                    .min_by_key(|&v| residual[v])
                    .expect("vertices remain");
                removed[v] = true;
                removal.push(v);
                for (u, w) in a.row_entries(v) {
                    if u != v && w != 0.0 && !removed[u] {
                        residual[u] -= 1;
                    }
                }
            }
            removal.reverse();
            removal
        }
    }
}

/// Upper bound on the chromatic number used by greedy coloring:
/// `max_degree + 1`.
pub fn greedy_color_bound(a: &CsrMatrix) -> usize {
    (0..a.rows())
        .map(|v| {
            a.row_entries(v)
                .filter(|&(u, w)| u != v && w != 0.0)
                .count()
        })
        .max()
        .map_or(0, |d| d + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_sparse::CooMatrix;

    fn cycle(n: usize) -> CsrMatrix {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            a.push_sym(i, (i + 1) % n, -1.0).unwrap();
        }
        a.to_csr()
    }

    #[test]
    fn even_cycle_gets_two_colors() {
        let a = cycle(8);
        let c = greedy_coloring(&a, GreedyStrategy::Natural).unwrap();
        assert_eq!(c.num_colors(), 2);
        c.verify_for(&a).unwrap();
    }

    #[test]
    fn odd_cycle_needs_three_colors() {
        let a = cycle(7);
        let c = greedy_coloring(&a, GreedyStrategy::Natural).unwrap();
        assert_eq!(c.num_colors(), 3);
        c.verify_for(&a).unwrap();
    }

    #[test]
    fn all_strategies_produce_valid_colorings() {
        let a = cycle(9);
        for s in [
            GreedyStrategy::Natural,
            GreedyStrategy::LargestDegreeFirst,
            GreedyStrategy::SmallestDegreeLast,
        ] {
            let c = greedy_coloring(&a, s).unwrap();
            c.verify_for(&a).unwrap();
            assert!(c.num_colors() <= greedy_color_bound(&a));
        }
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let n = 5;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            for j in (i + 1)..n {
                coo.push_sym(i, j, -1.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let c = greedy_coloring(&a, GreedyStrategy::Natural).unwrap();
        assert_eq!(c.num_colors(), n);
        c.verify_for(&a).unwrap();
    }

    #[test]
    fn rejects_rectangular() {
        let a = CooMatrix::new(2, 3).to_csr();
        assert!(greedy_coloring(&a, GreedyStrategy::Natural).is_err());
    }

    #[test]
    fn isolated_vertices_share_one_color() {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let c = greedy_coloring(&a, GreedyStrategy::Natural).unwrap();
        assert_eq!(c.num_colors(), 1);
    }

    #[test]
    fn explicit_zero_edges_are_ignored() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        coo.push_sym(0, 1, 0.0).unwrap(); // structural but zero
        let a = coo.to_csr();
        let c = greedy_coloring(&a, GreedyStrategy::Natural).unwrap();
        assert_eq!(c.num_colors(), 1);
    }
}
