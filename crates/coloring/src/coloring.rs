//! Validated color assignments and the orderings they induce.

use mspcg_sparse::{CsrMatrix, Partition, Permutation, SparseError};

/// A color assignment over `0..n` unknowns with colors `0..num_colors`.
///
/// Validity (every stored off-diagonal entry couples two *different*
/// colors) is **not** implied by construction — call
/// [`Coloring::verify_for`] against the matrix the coloring is meant to
/// decouple. The plate colorings in [`crate::grid`] are valid by theorem;
/// the greedy coloring of [`crate::greedy`] is valid by construction; both
/// are still verified in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    labels: Vec<usize>,
    num_colors: usize,
}

impl Coloring {
    /// Build from per-unknown labels. `num_colors` must be exactly
    /// `max(labels) + 1` and every color in `0..num_colors` must be used —
    /// the multicolor sweep iterates over color classes and requires each
    /// to be nonempty.
    ///
    /// # Errors
    /// [`SparseError::InvalidPartition`] when a color class is empty or a
    /// label exceeds `num_colors`.
    pub fn from_labels(labels: Vec<usize>, num_colors: usize) -> Result<Self, SparseError> {
        let mut used = vec![false; num_colors];
        for (i, &c) in labels.iter().enumerate() {
            if c >= num_colors {
                return Err(SparseError::InvalidPartition {
                    reason: format!("label {c} at index {i} exceeds color count {num_colors}"),
                });
            }
            used[c] = true;
        }
        if let Some(missing) = used.iter().position(|&u| !u) {
            return Err(SparseError::InvalidPartition {
                reason: format!("color {missing} unused"),
            });
        }
        Ok(Coloring { labels, num_colors })
    }

    /// Number of unknowns.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no unknowns are colored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of colors.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// Color of unknown `i`.
    #[inline]
    pub fn color_of(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Raw label slice.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-color class sizes.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_colors];
        for &c in &self.labels {
            sizes[c] += 1;
        }
        sizes
    }

    /// Verify the coloring decouples `a`: every stored off-diagonal entry
    /// must join two distinct colors, so each diagonal block of the permuted
    /// matrix is a diagonal matrix.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] if sizes disagree;
    /// [`SparseError::InvalidPartition`] naming the first offending edge.
    pub fn verify_for(&self, a: &CsrMatrix) -> Result<(), SparseError> {
        if a.rows() != self.len() {
            return Err(SparseError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (self.len(), 1),
            });
        }
        for i in 0..a.rows() {
            for (j, v) in a.row_entries(i) {
                if j != i && v != 0.0 && self.labels[i] == self.labels[j] {
                    return Err(SparseError::InvalidPartition {
                        reason: format!(
                            "unknowns {i} and {j} are coupled but share color {}",
                            self.labels[i]
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Derive the color ordering: unknowns sorted by color (stable within a
    /// color, preserving the original — in the paper, bottom-to-top,
    /// left-to-right — numbering), plus the contiguous color partition.
    pub fn ordering(&self) -> ColorOrdering {
        let sizes = self.class_sizes();
        let partition = Partition::from_sizes(&sizes).expect("nonempty classes by construction");
        let mut next: Vec<usize> = partition.offsets()[..self.num_colors].to_vec();
        let mut new_to_old = vec![0usize; self.len()];
        for (old, &c) in self.labels.iter().enumerate() {
            new_to_old[next[c]] = old;
            next[c] += 1;
        }
        let permutation =
            Permutation::from_new_to_old(new_to_old).expect("coloring induces a bijection");
        ColorOrdering {
            permutation,
            partition,
        }
    }

    /// Refine a node coloring into a dof coloring: unknown `node·k + d`
    /// receives color `node_color·k + d`. This is exactly the paper's step
    /// from 3 node colors (R/B/G) to 6 equation colors (R(u), R(v), …) —
    /// needed because the u and v equations at one node couple (Fig. 2).
    ///
    /// # Errors
    /// Propagates [`Coloring::from_labels`] errors.
    pub fn refine_per_dof(&self, dofs_per_node: usize) -> Result<Coloring, SparseError> {
        let mut labels = Vec::with_capacity(self.len() * dofs_per_node);
        for &c in &self.labels {
            for d in 0..dofs_per_node {
                labels.push(c * dofs_per_node + d);
            }
        }
        Coloring::from_labels(labels, self.num_colors * dofs_per_node)
    }

    /// Restrict the coloring to a subset of unknowns (e.g. after Dirichlet
    /// elimination), keeping only colors that remain in use and compacting
    /// the color indices.
    ///
    /// `keep[i]` is `true` when unknown `i` survives.
    ///
    /// # Errors
    /// [`SparseError::ShapeMismatch`] if `keep.len()` differs;
    /// [`SparseError::InvalidPartition`] if no unknowns survive.
    pub fn restrict(&self, keep: &[bool]) -> Result<Coloring, SparseError> {
        if keep.len() != self.len() {
            return Err(SparseError::ShapeMismatch {
                left: (keep.len(), 1),
                right: (self.len(), 1),
            });
        }
        let surviving: Vec<usize> = self
            .labels
            .iter()
            .zip(keep)
            .filter(|&(_, &k)| k)
            .map(|(&c, _)| c)
            .collect();
        if surviving.is_empty() {
            return Err(SparseError::InvalidPartition {
                reason: "restriction removes every unknown".into(),
            });
        }
        // Compact color ids.
        let mut remap = vec![usize::MAX; self.num_colors];
        let mut next = 0usize;
        for &c in &surviving {
            if remap[c] == usize::MAX {
                remap[c] = next;
                next += 1;
            }
        }
        // Keep color order stable (by original color index).
        let mut order: Vec<usize> = (0..self.num_colors)
            .filter(|&c| remap[c] != usize::MAX)
            .collect();
        order.sort_unstable();
        for (rank, &c) in order.iter().enumerate() {
            remap[c] = rank;
        }
        let labels = surviving.into_iter().map(|c| remap[c]).collect();
        Coloring::from_labels(labels, next)
    }
}

/// The permutation/partition pair induced by a [`Coloring`].
#[derive(Debug, Clone)]
pub struct ColorOrdering {
    /// New→old gather order (new index space is grouped by color).
    pub permutation: Permutation,
    /// Contiguous color blocks in the new index space.
    pub partition: Partition,
}

impl ColorOrdering {
    /// Apply to a square symmetric matrix: returns the color-blocked matrix.
    ///
    /// # Errors
    /// Propagates [`CsrMatrix::permute_sym`] errors.
    pub fn permute_matrix(&self, a: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
        a.permute_sym(&self.permutation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspcg_sparse::CooMatrix;

    fn path_matrix(n: usize) -> CsrMatrix {
        let mut a = CooMatrix::new(n, n);
        for i in 0..n {
            a.push(i, i, 2.0).unwrap();
            if i + 1 < n {
                a.push_sym(i, i + 1, -1.0).unwrap();
            }
        }
        a.to_csr()
    }

    #[test]
    fn from_labels_rejects_unused_color() {
        assert!(Coloring::from_labels(vec![0, 0, 2], 3).is_err());
        assert!(Coloring::from_labels(vec![0, 1, 2], 3).is_ok());
    }

    #[test]
    fn from_labels_rejects_out_of_range() {
        assert!(Coloring::from_labels(vec![0, 5], 2).is_err());
    }

    #[test]
    fn verify_red_black_path() {
        let a = path_matrix(6);
        let rb = Coloring::from_labels(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        assert!(rb.verify_for(&a).is_ok());
        let bad = Coloring::from_labels(vec![0, 0, 1, 1, 0, 1], 2).unwrap();
        assert!(bad.verify_for(&a).is_err());
    }

    #[test]
    fn ordering_groups_by_color_and_is_stable() {
        let c = Coloring::from_labels(vec![1, 0, 1, 0], 2).unwrap();
        let ord = c.ordering();
        // Color 0: old 1, 3; color 1: old 0, 2 (stable).
        assert_eq!(ord.permutation.as_slice(), &[1, 3, 0, 2]);
        assert_eq!(ord.partition.num_blocks(), 2);
        assert_eq!(ord.partition.range(0), 0..2);
    }

    #[test]
    fn permuted_diagonal_blocks_are_diagonal() {
        let a = path_matrix(6);
        let rb = Coloring::from_labels(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let ord = rb.ordering();
        let b = ord.permute_matrix(&a).unwrap();
        for blk in ord.partition.iter() {
            for i in blk.clone() {
                for (j, v) in b.row_entries(i) {
                    if blk.contains(&j) && j != i {
                        panic!("off-diagonal {i},{j} = {v} inside color block");
                    }
                }
            }
        }
    }

    #[test]
    fn refine_per_dof_doubles_colors() {
        let c = Coloring::from_labels(vec![0, 1, 2], 3).unwrap();
        let r = c.refine_per_dof(2).unwrap();
        assert_eq!(r.num_colors(), 6);
        assert_eq!(r.labels(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn restrict_compacts_colors() {
        let c = Coloring::from_labels(vec![0, 1, 2, 1], 3).unwrap();
        // Drop the only color-0 unknown.
        let r = c.restrict(&[false, true, true, true]).unwrap();
        assert_eq!(r.num_colors(), 2);
        assert_eq!(r.labels(), &[0, 1, 0]);
    }

    #[test]
    fn restrict_rejects_empty_result() {
        let c = Coloring::from_labels(vec![0], 1).unwrap();
        assert!(c.restrict(&[false]).is_err());
    }

    #[test]
    fn class_sizes_sum_to_len() {
        let c = Coloring::from_labels(vec![0, 1, 0, 2, 1, 0], 3).unwrap();
        let sizes = c.class_sizes();
        assert_eq!(sizes, vec![3, 2, 1]);
        assert_eq!(sizes.iter().sum::<usize>(), c.len());
    }
}
