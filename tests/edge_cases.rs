//! Edge cases of the (batched) PCG entry points: empty systems, `1×1`
//! systems, zero right-hand sides, a zero iteration budget, and the
//! honest-residual contract of the `max_iterations` exit path.

use mspcg::coloring::Coloring;
use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::multi::{pcg_solve_multi, MultiRhsWorkspace, SolveStatus};
use mspcg::core::pcg::{
    pcg_solve, pcg_solve_into, pcg_try_solve_into, PcgOptions, PcgWorkspace, StoppingCriterion,
};
use mspcg::core::preconditioner::IdentityPreconditioner;
use mspcg::sparse::{vecops, CooMatrix, CsrMatrix, Partition, SparseError};

fn laplacian(n: usize) -> CsrMatrix {
    let mut a = CooMatrix::new(n, n);
    for i in 0..n {
        a.push(i, i, 2.0).unwrap();
        if i + 1 < n {
            a.push_sym(i, i + 1, -1.0).unwrap();
        }
    }
    a.to_csr()
}

fn rb_laplacian(n: usize) -> (CsrMatrix, Partition) {
    let a = laplacian(n);
    let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
    let ord = Coloring::from_labels(labels, 2).unwrap().ordering();
    (ord.permute_matrix(&a).unwrap(), ord.partition)
}

#[test]
fn empty_system_converges_immediately() {
    let a = CsrMatrix::identity(0);
    let mut ws = PcgWorkspace::new(0);
    let mut u: Vec<f64> = vec![];
    let rep = pcg_solve_into(
        &a,
        &[],
        &mut u,
        &IdentityPreconditioner::new(0),
        &PcgOptions::default(),
        &mut ws,
    )
    .unwrap();
    assert!(rep.converged);
    assert_eq!(rep.iterations, 0);
    assert_eq!(rep.final_relative_residual, 0.0);
}

#[test]
fn one_by_one_system_solves_exactly() {
    let a = CsrMatrix::from_diag(&[4.0]);
    let sol = pcg_solve(
        &a,
        &[8.0],
        &IdentityPreconditioner::new(1),
        &PcgOptions {
            tol: 1e-14,
            criterion: StoppingCriterion::RelativeResidual,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(sol.converged);
    assert_eq!(sol.x, vec![2.0]);
    assert_eq!(sol.iterations, 1);
}

#[test]
fn zero_rhs_zeroes_a_stale_output_buffer() {
    // The b = 0 early return must write the (exact) zero solution, not
    // hand the caller back whatever the buffer held.
    let a = laplacian(8);
    let mut ws = PcgWorkspace::new(8);
    let mut u = vec![7.5; 8]; // poisoned warm start
    let rep = pcg_solve_into(
        &a,
        &[0.0; 8],
        &mut u,
        &IdentityPreconditioner::new(8),
        &PcgOptions::default(),
        &mut ws,
    )
    .unwrap();
    assert!(rep.converged);
    assert_eq!(rep.iterations, 0);
    assert_eq!(u, vec![0.0; 8]);
}

#[test]
fn zero_iteration_budget_reports_honest_residual() {
    let a = laplacian(12);
    let b = vec![1.0; 12];
    let mut ws = PcgWorkspace::new(12);
    let mut u = vec![0.0; 12];
    let opts = PcgOptions {
        max_iterations: 0,
        tol: 1e-12,
        ..Default::default()
    };
    let rep = pcg_try_solve_into(
        &a,
        &b,
        &mut u,
        &IdentityPreconditioner::new(12),
        &opts,
        &mut ws,
    )
    .unwrap();
    assert!(!rep.converged);
    assert_eq!(rep.iterations, 0);
    // Nothing happened: u is still the initial guess, the true relative
    // residual is ‖b − K·0‖/‖b‖ = 1.
    assert_eq!(u, vec![0.0; 12]);
    assert!((rep.final_relative_residual - 1.0).abs() < 1e-15);
    // The erroring wrapper reports the same number.
    match pcg_solve_into(
        &a,
        &b,
        &mut u,
        &IdentityPreconditioner::new(12),
        &opts,
        &mut ws,
    ) {
        Err(SparseError::DidNotConverge {
            iterations: 0,
            residual,
        }) => assert!((residual - 1.0).abs() < 1e-15),
        other => panic!("expected DidNotConverge, got {other:?}"),
    }
}

#[test]
fn budget_exit_residual_matches_a_fresh_recomputation() {
    // Stop a hard solve early and verify the reported residual really is
    // ‖f − K·u‖/‖f‖ of the returned iterate, not the in-loop recursion.
    let (a, p) = rb_laplacian(64);
    let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
    let b: Vec<f64> = (0..64).map(|i| ((i * 7 + 2) % 19) as f64 - 9.0).collect();
    let mut ws = PcgWorkspace::new(64);
    let mut u = vec![0.0; 64];
    let opts = PcgOptions {
        tol: 1e-15,
        max_iterations: 3,
        ..Default::default()
    };
    let rep = pcg_try_solve_into(&a, &b, &mut u, &pre, &opts, &mut ws).unwrap();
    assert!(!rep.converged);
    // The residual claim is schedule-agnostic, so the ambient variant is
    // deliberately not pinned — but the iteration count is granular: the
    // s-step schedule runs whole `s`-blocks, so a forced `sstep:S` with
    // `S > 3` exhausts this budget at 0 iterations.
    assert!(rep.iterations <= 3, "budget overrun: {}", rep.iterations);
    let mut true_r = b.clone();
    a.mul_vec_axpy(-1.0, &u, &mut true_r);
    let expected = vecops::norm2(&true_r) / vecops::norm2(&b);
    assert_eq!(
        rep.final_relative_residual.to_bits(),
        expected.to_bits(),
        "reported {} vs recomputed {}",
        rep.final_relative_residual,
        expected
    );
}

#[test]
fn fused_loop_agrees_with_manual_unfused_iteration() {
    // Replay Algorithm 1 with the individual (unfused) vecops kernels and
    // require bitwise agreement with pcg_solve_into's fused loop.
    let (a, p) = rb_laplacian(96);
    let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 2).unwrap();
    let b: Vec<f64> = (0..96)
        .map(|i| ((i * 11 + 5) % 31) as f64 * 0.2 - 3.0)
        .collect();
    let opts = PcgOptions {
        tol: 1e-10,
        // Pinned classic: the manual replay below is the classic loop, and
        // bitwise agreement is a classic-fusion claim — the env override
        // must not redirect it to the single-reduction recurrence.
        variant: mspcg::core::pcg::PcgVariant::Classic,
        ..Default::default()
    };
    let mut ws = PcgWorkspace::new(96);
    let mut u_fused = vec![0.0; 96];
    let rep = pcg_solve_into(&a, &b, &mut u_fused, &pre, &opts, &mut ws).unwrap();

    // Manual unfused loop (same algorithm, separate kernel calls).
    use mspcg::core::preconditioner::Preconditioner;
    let n = 96;
    let mut u = vec![0.0; n];
    let mut r = b.clone();
    let mut rhat = vec![0.0; n];
    let mut pv = vec![0.0; n];
    let mut kp = vec![0.0; n];
    pre.apply(&r, &mut rhat);
    pv.copy_from_slice(&rhat);
    let mut rz = vecops::dot(&rhat, &r);
    let mut iters = 0usize;
    for _ in 0..opts.max_iterations {
        a.mul_vec_into(&pv, &mut kp);
        let denom = vecops::dot(&pv, &kp);
        let alpha = rz / denom;
        iters += 1;
        vecops::axpy(alpha, &pv, &mut u);
        let change = alpha.abs() * vecops::norm_inf(&pv);
        vecops::axpy(-alpha, &kp, &mut r);
        if change < opts.tol {
            break;
        }
        pre.apply(&r, &mut rhat);
        let rz_new = vecops::dot(&rhat, &r);
        let beta = rz_new / rz.max(1e-300);
        rz = rz_new;
        vecops::xpby(&rhat, beta, &mut pv);
    }
    assert_eq!(iters, rep.iterations, "iteration count diverged");
    assert_eq!(
        u_fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        u.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "fused pcg_solve_into differs from the manual unfused loop"
    );
}

#[test]
fn multi_rhs_edge_shapes() {
    let (a, p) = rb_laplacian(16);
    let pre = MStepSsorPreconditioner::unparametrized(&a, &p, 1).unwrap();
    let opts = PcgOptions::default();

    // Zero RHS in the batch.
    let mut ws = MultiRhsWorkspace::new(16, 0);
    let sum = pcg_solve_multi(&a, &[], &mut [], &pre, &opts, &mut ws).unwrap();
    assert_eq!(sum.solved, 0);

    // Single RHS batch behaves like a standalone solve.
    let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).sin()).collect();
    let mut u_batch = vec![0.0; 16];
    let mut ws = MultiRhsWorkspace::new(16, 1);
    let sum = pcg_solve_multi(&a, &b, &mut u_batch, &pre, &opts, &mut ws).unwrap();
    assert_eq!(sum.converged, 1);
    assert_eq!(ws.outcomes().len(), 1);
    assert_eq!(ws.outcomes()[0].status, SolveStatus::Converged);
    let mut sws = PcgWorkspace::new(16);
    let mut u_single = vec![0.0; 16];
    pcg_solve_into(&a, &b, &mut u_single, &pre, &opts, &mut sws).unwrap();
    assert_eq!(u_batch, u_single);

    // Batch containing a b = 0 column gets the exact zero column back.
    let mut f = b.clone();
    f.extend(std::iter::repeat_n(0.0, 16));
    let mut u = vec![1.0; 32];
    let mut ws = MultiRhsWorkspace::new(16, 2);
    let sum = pcg_solve_multi(&a, &f, &mut u, &pre, &opts, &mut ws).unwrap();
    assert_eq!(sum.converged, 2);
    assert!(u[16..].iter().all(|&v| v == 0.0));
}
