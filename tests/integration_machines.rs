//! Machine-simulator integration: both 1983 machines must reproduce the
//! paper's qualitative results end to end (quick problem sizes).

use mspcg::fem::plate::PlaneStressProblem;
use mspcg::machine::array::run_fem_machine;
use mspcg::machine::vector::{run_cyber_pcg, CoefficientChoice};
use mspcg::machine::{ArrayMachineParams, ProcessorAssignment, VectorMachineParams};

#[test]
fn cyber_times_are_u_shaped_in_m() {
    // Time drops from m = 0, bottoms out, and the minimizing m > 0.
    let asm = PlaneStressProblem::unit_square(14).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let params = VectorMachineParams::default();
    let mut times = Vec::new();
    for m in 0..=6usize {
        let choice = if m >= 2 {
            CoefficientChoice::Parametrized
        } else {
            CoefficientChoice::Unparametrized
        };
        let rep = run_cyber_pcg(&asm, &ord, m, choice, &params, 1e-6).unwrap();
        times.push(rep.seconds);
    }
    let best = times
        .iter()
        .enumerate()
        .min_by(|x, y| x.1.partial_cmp(y.1).unwrap())
        .unwrap()
        .0;
    assert!(best >= 1, "preconditioning should beat plain CG: {times:?}");
    assert!(
        times[best] < times[0] * 0.8,
        "improvement too small: {times:?}"
    );
}

#[test]
fn cyber_dot_products_cost_more_than_updates() {
    // The paper's central premise: inner products are the expensive part.
    let asm = PlaneStressProblem::unit_square(12).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let rep = run_cyber_pcg(
        &asm,
        &ord,
        0,
        CoefficientChoice::Unparametrized,
        &VectorMachineParams::default(),
        1e-6,
    )
    .unwrap();
    assert!(rep.breakdown.dots > rep.breakdown.updates);
}

#[test]
fn fem_machine_reproduces_table3_speedup_bands() {
    let asm = PlaneStressProblem::unit_square(6).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let params = ArrayMachineParams::default();
    let run = |m: usize, p: usize| {
        let choice = if m >= 2 {
            CoefficientChoice::Parametrized
        } else {
            CoefficientChoice::Unparametrized
        };
        run_fem_machine(&asm, &ord, m, choice, p, &params, 1e-6).unwrap()
    };
    for m in [0usize, 2, 4] {
        let t1 = run(m, 1).seconds;
        let t2 = run(m, 2).seconds;
        let t5 = run(m, 5).seconds;
        let s2 = t1 / t2;
        let s5 = t1 / t5;
        assert!((1.5..2.0).contains(&s2), "m = {m}: s2 = {s2}");
        assert!((2.4..4.5).contains(&s5), "m = {m}: s5 = {s5}");
    }
}

#[test]
fn fem_machine_iterations_equal_cyber_iterations() {
    // Same algorithm, same problem, same tolerance ⇒ identical counts:
    // the simulators share the numerical core.
    let asm = PlaneStressProblem::unit_square(8).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    for m in [0usize, 1, 3] {
        let c = run_cyber_pcg(
            &asm,
            &ord,
            m,
            CoefficientChoice::Unparametrized,
            &VectorMachineParams::default(),
            1e-6,
        )
        .unwrap();
        let f = run_fem_machine(
            &asm,
            &ord,
            m,
            CoefficientChoice::Unparametrized,
            2,
            &ArrayMachineParams::default(),
            1e-6,
        )
        .unwrap();
        assert_eq!(c.iterations, f.iterations, "m = {m}");
    }
}

#[test]
fn sum_circuit_reduces_cg_overhead() {
    // The paper motivates the sum/max hardware circuit by the cost of the
    // software global sums. Flip the switch and check the direction.
    let asm = PlaneStressProblem::unit_square(6).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let soft = ArrayMachineParams::default();
    let hard = ArrayMachineParams {
        sum_circuit: true,
        ..Default::default()
    };
    let rs = run_fem_machine(
        &asm,
        &ord,
        0,
        CoefficientChoice::Unparametrized,
        5,
        &soft,
        1e-6,
    )
    .unwrap();
    let rh = run_fem_machine(
        &asm,
        &ord,
        0,
        CoefficientChoice::Unparametrized,
        5,
        &hard,
        1e-6,
    )
    .unwrap();
    assert!(rh.breakdown.reductions < rs.breakdown.reductions);
    assert!(rh.seconds < rs.seconds);
}

#[test]
fn assignments_scale_to_many_processors() {
    let asm = PlaneStressProblem::unit_square(12).assemble().unwrap();
    for p in [1usize, 2, 3, 4, 6, 11, 22, 33] {
        let assign = ProcessorAssignment::strips(&asm, p).unwrap();
        let total: usize = (0..p).map(|q| assign.nodes_of(q).len()).sum();
        assert_eq!(total, 12 * 11);
        assert!(assign.max_links_used() <= 8);
    }
}
