//! Classic vs single-reduction PCG agreement, end to end.
//!
//! The Chronopoulos–Gear recurrence follows a different-but-bounded
//! rounding path from the classic two-dot loop, so the contract is not
//! bitwise equality across variants — it is:
//!
//! * both variants drive the TRUE relative residual of the plate and
//!   Poisson families below a `κ(K)`-scaled multiple of machine epsilon,
//!   for every thread count (the xorshift property loop below),
//! * each variant is **bitwise reproducible within itself** across thread
//!   counts (the determinism contract of the kernel layer),
//! * recurrence breakdown falls back to the classic loop instead of
//!   failing the solve (unit-tested in `mspcg-core`; exercised here on
//!   the SPMD solver's rerun path),
//! * the batched multi-RHS driver threads the variant through unchanged:
//!   every lane replays its standalone solve bitwise.

use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::multi::{pcg_solve_multi, MultiRhsWorkspace};
use mspcg::core::pcg::{
    pcg_solve, pcg_solve_into, PcgOptions, PcgVariant, PcgWorkspace, StoppingCriterion,
};
use mspcg::core::preconditioner::Preconditioner;
use mspcg::fem::plate::PlaneStressProblem;
use mspcg::fem::poisson::poisson5;
use mspcg::parallel::{ParallelMStepPcg, ParallelSolverOptions};
use mspcg::sparse::{par, vecops, CsrMatrix, Partition};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The thread budget is process global; sweep one test at a time.
fn sweep_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

mod common;
use common::Rng;

fn ordered_plate(a: usize) -> (CsrMatrix, Partition) {
    let asm = PlaneStressProblem::unit_square(a)
        .assemble()
        .expect("plate");
    let ord = asm.multicolor().expect("multicolor");
    (ord.matrix, ord.colors)
}

fn ordered_poisson(n: usize) -> (CsrMatrix, Partition) {
    let p = poisson5(n).expect("poisson");
    let ord = p.coloring.ordering();
    let matrix = ord.permute_matrix(&p.matrix).expect("permute");
    (matrix, ord.partition)
}

fn opts(variant: PcgVariant, tol: f64) -> PcgOptions {
    PcgOptions {
        tol,
        criterion: StoppingCriterion::RelativeResidual,
        variant,
        ..Default::default()
    }
}

/// TRUE relative residual of an iterate (recomputed, not recursive).
fn true_residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let mut r = b.to_vec();
    a.mul_vec_axpy(-1.0, x, &mut r);
    vecops::norm2(&r) / vecops::norm2(b).max(1e-300)
}

/// The xorshift property loop of the issue: random right-hand sides
/// against the plate and Poisson families, classic vs single-reduction,
/// at 1/2/4/8 worker threads. Both variants must converge, and both
/// iterates must agree with each other through the TRUE residual to a
/// `50·ε·κ`-style tolerance (κ enters through the solver tolerance: both
/// residuals are < tol, so the iterate gap is bounded by `2·tol·κ` — the
/// assertion below checks the residual form, which is condition-free).
#[test]
fn property_loop_classic_vs_single_reduction_across_thread_counts() {
    let _guard = sweep_lock();
    let systems: Vec<(CsrMatrix, Partition, usize)> = vec![
        {
            let (a, p) = ordered_plate(8);
            (a, p, 2)
        },
        {
            let (a, p) = ordered_plate(11);
            (a, p, 3)
        },
        {
            let (a, p) = ordered_poisson(16);
            (a, p, 1)
        },
        {
            let (a, p) = ordered_poisson(23);
            (a, p, 2)
        },
    ];
    let tol = 1e-10;
    let before = par::max_threads();
    let mut rng = Rng::new(0xC0FFEE);
    for (case, (a, colors, m)) in systems.iter().enumerate() {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|_| rng.unit() * 2.0 - 1.0).collect();
        let pre = MStepSsorPreconditioner::unparametrized(a, colors, *m).expect("preconditioner");
        let mut reference: Option<(Vec<f64>, Vec<f64>)> = None;
        for threads in [1usize, 2, 4, 8] {
            par::set_max_threads(threads);
            let classic = pcg_solve(a, &b, &pre, &opts(PcgVariant::Classic, tol)).expect("classic");
            let sr = pcg_solve(a, &b, &pre, &opts(PcgVariant::SingleReduction, tol))
                .expect("single-reduction");
            assert!(
                classic.converged && sr.converged,
                "case {case}, threads {threads}"
            );
            // Both variants bound the TRUE residual they report.
            let res_c = true_residual(a, &b, &classic.x);
            let res_s = true_residual(a, &b, &sr.x);
            assert!(res_c < 50.0 * tol, "case {case}: classic residual {res_c}");
            assert!(
                res_s < 50.0 * tol,
                "case {case}: single-reduction residual {res_s}"
            );
            // And the iterates agree to solver accuracy.
            let scale = vecops::norm_inf(&classic.x).max(1.0);
            for (x, y) in classic.x.iter().zip(&sr.x) {
                assert!(
                    (x - y).abs() < 1e-6 * scale,
                    "case {case}, threads {threads}: {x} vs {y}"
                );
            }
            // Bitwise thread-count insensitivity *within* each variant.
            match &reference {
                None => reference = Some((classic.x.clone(), sr.x.clone())),
                Some((cx, sx)) => {
                    assert!(
                        classic
                            .x
                            .iter()
                            .zip(cx)
                            .all(|(u, v)| u.to_bits() == v.to_bits()),
                        "case {case}: classic not thread-count insensitive at {threads}"
                    );
                    assert!(
                        sr.x.iter().zip(sx).all(|(u, v)| u.to_bits() == v.to_bits()),
                        "case {case}: single-reduction not thread-count insensitive at {threads}"
                    );
                }
            }
        }
    }
    par::set_max_threads(before);
}

/// The batched driver threads the variant through untouched: every lane
/// of a single-reduction batch replays its standalone solve bitwise, and
/// the batch stays allocation-compatible with the shared workspace.
#[test]
fn multi_rhs_batch_replays_standalone_single_reduction_bitwise() {
    let (a, colors) = ordered_plate(7);
    let n = a.rows();
    let pre = MStepSsorPreconditioner::unparametrized(&a, &colors, 2).expect("preconditioner");
    let solve_opts = opts(PcgVariant::SingleReduction, 1e-9);
    let nrhs = 5usize;
    let mut rng = Rng::new(42);
    let f: Vec<f64> = (0..nrhs * n).map(|_| rng.unit() - 0.5).collect();
    let mut u = vec![0.0; nrhs * n];
    let mut ws = MultiRhsWorkspace::new(n, nrhs);
    let summary = pcg_solve_multi(&a, &f, &mut u, &pre, &solve_opts, &mut ws).expect("batch");
    assert_eq!(summary.converged, nrhs);
    let mut single_ws = PcgWorkspace::new(n);
    for i in 0..nrhs {
        let mut ui = vec![0.0; n];
        let rep = pcg_solve_into(
            &a,
            &f[i * n..(i + 1) * n],
            &mut ui,
            &pre,
            &solve_opts,
            &mut single_ws,
        )
        .expect("standalone");
        assert!(
            u[i * n..(i + 1) * n]
                .iter()
                .zip(&ui)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "RHS {i} differs from standalone single-reduction solve"
        );
        assert_eq!(ws.outcomes()[i].report.iterations, rep.iterations);
        // The counter survives the batch path: one reduction phase per
        // iteration (+1 init; converging relative-residual iterations run
        // theirs).
        assert!(
            ws.outcomes()[i].report.stats.reduction_phases <= rep.iterations + 1,
            "RHS {i}: {} phases for {} iterations",
            ws.outcomes()[i].report.stats.reduction_phases,
            rep.iterations
        );
    }
}

/// The adversarial preconditioner of the breakdown tests: the identity on
/// every application except one, where it adds a huge constant component
/// — a low-curvature direction that sends the recurrence's reconstructed
/// denominator nonpositive while the matrix itself stays SPD.
struct AdversarialPreconditioner {
    n: usize,
    at_call: usize,
    calls: std::cell::Cell<usize>,
}

impl Preconditioner for AdversarialPreconditioner {
    fn dim(&self) -> usize {
        self.n
    }
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let call = self.calls.get();
        self.calls.set(call + 1);
        z.copy_from_slice(r);
        if call == self.at_call {
            // Signed by Σr so the carried γ′ stays positive — the guard
            // that must fire is the denominator/curvature one, the
            // fallback path, not the indefinite-M error.
            let s: f64 = r.iter().sum();
            let t = 1e8f64.copysign(s);
            for zi in z.iter_mut() {
                *zi += t;
            }
        }
    }
}

/// Pipelined-breakdown satellite: the sabotaged application lands on the
/// heavy phase `mv = M⁻¹w`, poisoning the `q`/`z` carries; a guard must
/// fire, the solve must CONTINUE from the current iterate on the classic
/// loop (not restart or error), and the report must say FALLBACK.
#[test]
fn pipelined_breakdown_falls_back_from_current_iterate_and_reports_fallback() {
    let (a, _) = ordered_plate(7);
    let n = a.rows();
    let mut rng = Rng::new(0xBAD5EED);
    let b: Vec<f64> = (0..n).map(|_| rng.unit() * 2.0 - 1.0).collect();
    let pre = AdversarialPreconditioner {
        n,
        at_call: 4,
        calls: std::cell::Cell::new(0),
    };
    let solve_opts = opts(PcgVariant::Pipelined, 1e-10);
    let sol = pcg_solve(&a, &b, &pre, &solve_opts).expect("fallback must rescue the solve");
    assert!(sol.converged);
    // The report says FALLBACK.
    assert_eq!(sol.stats.fallbacks, 1, "breakdown was not recorded");
    assert!(true_residual(&a, &b, &sol.x) < 50.0 * 1e-10);
    // Continuation, not restart: the classic suffix runs from the current
    // iterate, so its two serialized reduction phases per iteration stack
    // on top of the pipelined prefix's one per iteration…
    assert!(
        sol.stats.reduction_phases >= sol.iterations + 2,
        "{} phases over {} iterations — the classic suffix never ran",
        sol.stats.reduction_phases,
        sol.iterations
    );
    // …and the total stays near an uninterrupted identity-preconditioned
    // classic solve (a restart would roughly double it).
    let clean = pcg_solve(
        &a,
        &b,
        &mspcg::core::preconditioner::IdentityPreconditioner::new(n),
        &opts(PcgVariant::Classic, 1e-10),
    )
    .expect("clean classic");
    assert!(
        sol.iterations <= clean.iterations + clean.iterations / 2 + 8,
        "fallback {} vs clean {} iterations — looks like a restart",
        sol.iterations,
        clean.iterations
    );
}

/// SPMD solver: the `MSPCG_PCG_VARIANT`-style selection through the
/// options struct agrees with the serial solvers, and the report's
/// counters expose the schedule.
#[test]
fn spmd_single_reduction_agrees_with_serial_and_reports_counters() {
    let (a, colors) = ordered_plate(8);
    let rhs: Vec<f64> = (0..a.rows())
        .map(|i| ((i * 13 + 7) % 29) as f64 * 0.1 - 1.2)
        .collect();
    let m = 2usize;
    let par_solver = ParallelMStepPcg::new(&a, &colors, vec![1.0; m]).expect("solver");
    let rep = par_solver
        .solve(
            &rhs,
            &ParallelSolverOptions {
                threads: 4,
                tol: 1e-8,
                max_iterations: 10_000,
                variant: PcgVariant::SingleReduction,
                // Pin the exact schedule: the barrier-count assertion
                // below must not absorb audit phases from env overrides.
                recovery: mspcg::core::recovery::RecoveryPolicy::off(),
            },
        )
        .expect("spmd");
    assert!(rep.converged);
    assert_eq!(rep.variant, PcgVariant::SingleReduction);
    assert_eq!(rep.reduction_phases, rep.iterations);
    let sweep = m * (2 * colors.num_blocks() - 1);
    // ≤ m·(2C−1)+2 barriers per iteration, measured.
    assert!(
        rep.barrier_crossings <= sweep + 1 + (rep.iterations - 1) * (sweep + 2) + 1,
        "{} crossings for {} iterations",
        rep.barrier_crossings,
        rep.iterations
    );
    let pre = MStepSsorPreconditioner::unparametrized(&a, &colors, m).expect("preconditioner");
    let seq = pcg_solve(
        &a,
        &rhs,
        &pre,
        &PcgOptions {
            tol: 1e-8,
            variant: PcgVariant::SingleReduction,
            ..Default::default()
        },
    )
    .expect("serial");
    assert!(
        (rep.iterations as isize - seq.iterations as isize).abs() <= 2,
        "spmd {} vs serial {}",
        rep.iterations,
        seq.iterations
    );
    for (x, y) in rep.x.iter().zip(&seq.x) {
        assert!((x - y).abs() < 1e-6, "{x} vs {y}");
    }
}
