//! The zero-allocation contract of the PCG hot loop, verified with a
//! counting global allocator: after a [`PcgWorkspace`] is constructed (and
//! warmed once), repeated `pcg_solve_into` calls — the ω-sweep pattern —
//! perform **no heap allocation at all**.

use mspcg::coloring::Coloring;
use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::multi::{pcg_solve_multi, MultiRhsWorkspace};
use mspcg::core::pcg::{pcg_solve_into, PcgOptions, PcgWorkspace};
use mspcg::fem::plate::PlaneStressProblem;
use mspcg::sparse::{CooMatrix, CsrMatrix, Partition};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// System allocator with an allocation-event counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Red/black 1-D Laplacian in color-blocked form.
fn rb_laplacian(n: usize) -> (CsrMatrix, Partition) {
    let mut a = CooMatrix::new(n, n);
    for i in 0..n {
        a.push(i, i, 2.0).unwrap();
        if i + 1 < n {
            a.push_sym(i, i + 1, -1.0).unwrap();
        }
    }
    let a = a.to_csr();
    let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
    let ord = Coloring::from_labels(labels, 2).unwrap().ordering();
    (ord.permute_matrix(&a).unwrap(), ord.partition)
}

#[test]
fn omega_sweep_solves_allocate_nothing_after_workspace_construction() {
    let n = 256usize;
    let (a, p) = rb_laplacian(n);
    let matrix = Arc::new(a);
    let colors = Arc::new(p);
    let rhs: Vec<f64> = (0..n)
        .map(|i| ((i * 7 + 3) % 23) as f64 * 0.1 - 1.0)
        .collect();
    let opts = PcgOptions {
        tol: 1e-9,
        ..Default::default()
    };

    // Preconditioner construction allocates (splitting tables, coefficient
    // vectors) — that is setup, not the hot loop.
    let omegas = [0.6, 0.8, 1.0, 1.2, 1.4];
    let pres: Vec<_> = omegas
        .iter()
        .map(|&w| {
            MStepSsorPreconditioner::unparametrized_omega_shared(
                Arc::clone(&matrix),
                Arc::clone(&colors),
                2,
                w,
            )
            .unwrap()
        })
        .collect();

    let mut ws = PcgWorkspace::new(n);
    let mut u = vec![0.0; n];

    // Warm once (first call may fault in lazily initialized runtime state).
    let warm = pcg_solve_into(&matrix, &rhs, &mut u, &pres[0], &opts, &mut ws).unwrap();
    assert!(warm.converged);

    let mut iteration_total = 0usize;
    let before = allocation_count();
    for pre in &pres {
        u.fill(0.0);
        let rep = pcg_solve_into(&matrix, &rhs, &mut u, pre, &opts, &mut ws).unwrap();
        assert!(rep.converged);
        iteration_total += rep.iterations;
    }
    let after = allocation_count();
    assert!(iteration_total > 0);
    assert_eq!(
        after - before,
        0,
        "PCG hot loop allocated {} time(s) across {} ω-sweep solves",
        after - before,
        omegas.len()
    );
}

#[test]
fn multi_rhs_batch_solves_allocate_nothing_after_workspace_construction() {
    // The batched solver's contract: 32 load cases against one plate
    // stiffness matrix, zero heap allocation per batch once the workspace
    // is warm.
    let nrhs = 32usize;
    let asm = PlaneStressProblem::unit_square(10).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let n = ord.matrix.rows();
    let matrix = Arc::new(ord.matrix);
    let colors = Arc::new(ord.colors);
    let pre =
        MStepSsorPreconditioner::unparametrized_shared(Arc::clone(&matrix), Arc::clone(&colors), 2)
            .unwrap();
    // 32 load cases: the assembled edge load under per-case scale factors.
    let f: Vec<f64> = (0..nrhs)
        .flat_map(|j| {
            let scale = 1.0 + 0.1 * j as f64;
            ord.rhs.iter().map(move |v| v * scale)
        })
        .collect();
    let mut u = vec![0.0; nrhs * n];
    let opts = PcgOptions {
        tol: 1e-9,
        ..Default::default()
    };
    let mut ws = MultiRhsWorkspace::new(n, nrhs);

    // Warm once: sizes every lane workspace (including the per-lane
    // preconditioner scratch) and the outcome table.
    let warm = pcg_solve_multi(&matrix, &f, &mut u, &pre, &opts, &mut ws).unwrap();
    assert_eq!(warm.converged, nrhs);

    let before = allocation_count();
    u.fill(0.0);
    let sum = pcg_solve_multi(&matrix, &f, &mut u, &pre, &opts, &mut ws).unwrap();
    let after = allocation_count();
    assert_eq!(sum.converged, nrhs);
    assert!(sum.total_iterations > 0);
    assert_eq!(
        after - before,
        0,
        "multi-RHS batch allocated {} time(s) across {} solves",
        after - before,
        nrhs
    );
}
