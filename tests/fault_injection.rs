//! Fault-injection conformance harness.
//!
//! One parameterized loop runs *every* [`PcgVariant`] × {serial, SPMD at
//! 1/2/4/8 workers} × {plate, Poisson, arrow} under injected faults and
//! asserts, for every cell:
//!
//! * **(a) rescue** — a NaN out of a preconditioner application and a
//!   large-but-finite SpMV corruption both leave the solve *converged*,
//!   verified by the TRUE recomputed residual against the clean matrix
//!   (never the solver's own recurrence),
//! * **(b) bitwise within-variant replay** — the same faulted
//!   configuration solved twice returns bit-identical iterates (fault
//!   injection is deterministic: application-indexed wrappers serially,
//!   iteration-indexed plans in the SPMD workers),
//! * **(c) exact counters** — detections, replacements and ladder steps
//!   are pinned exactly for the NaN cells, where the detection path is
//!   schedule-determined: the serial ladder consumes a wrapper fault once
//!   (detector rungs hand the iterate down, the lower rung runs clean),
//!   while an SPMD [`FaultPlan`] fault is *persistent* — every rung rerun
//!   restarts the iteration counter, so the fault re-fires per rung until
//!   the classic rung absorbs it in place.
//!
//! The finite-corruption cells run at a tight tolerance under an explicit
//! audit policy: drift beyond the replacement bound is caught by the
//! fused `f − K·u` audit and replaced (classic) or stepped down
//! (recurrence schedules); drift below the bound is too small to matter
//! at the checked residual level. Either way the cell must converge.

use mspcg::coloring::Coloring;
use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{pcg_solve, PcgOptions, PcgVariant, StoppingCriterion};
use mspcg::core::poly::PolynomialPreconditioner;
use mspcg::core::recovery::{
    ApplicationFault, FaultKind, FaultPlan, FaultTarget, FaultyOp, FaultyPreconditioner,
    IterationFault, RecoveryPolicy, Toggle,
};
use mspcg::fem::plate::PlaneStressProblem;
use mspcg::fem::poisson::poisson5;
use mspcg::parallel::{ParallelMStepPcg, ParallelSolverOptions};
use mspcg::sparse::{vecops, CooMatrix, CsrMatrix, Partition, PolyKind, SparseOp};

/// Every variant the harness covers (kept in sync with
/// `variant_conformance.rs`, whose compile-time guard covers the enum).
const ALL_VARIANTS: [PcgVariant; 5] = [
    PcgVariant::Classic,
    PcgVariant::SingleReduction,
    PcgVariant::Pipelined,
    PcgVariant::SStep { s: 2 },
    PcgVariant::SStep { s: 4 },
];

/// Stopping tolerance of the NaN cells.
const TOL: f64 = 1e-8;
/// Tight tolerance of the audited finite-corruption cells.
const TIGHT: f64 = 1e-10;
/// Bound on the TRUE recomputed relative residual at convergence.
const RES_BOUND: f64 = 1e-6;

struct Family {
    name: &'static str,
    matrix: CsrMatrix,
    colors: Partition,
    m: usize,
}

/// Wide-row arrow family in a 3-color blocking (same construction as
/// `variant_conformance.rs`).
fn arrow_family(n: usize) -> (CsrMatrix, Partition) {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 8.0).unwrap();
        if i + 1 < n {
            coo.push_sym(i, i + 1, -1.0).unwrap();
        }
    }
    for j in 2..n {
        coo.push_sym(0, j, -2e-3).unwrap();
    }
    let a = coo.to_csr();
    let labels: Vec<usize> = (0..n)
        .map(|i| {
            if i == 0 {
                0
            } else if i % 2 == 1 {
                1
            } else {
                2
            }
        })
        .collect();
    let ord = Coloring::from_labels(labels, 3).unwrap().ordering();
    (ord.permute_matrix(&a).unwrap(), ord.partition)
}

fn families() -> Vec<Family> {
    let plate = {
        let asm = PlaneStressProblem::unit_square(6).assemble().unwrap();
        let ord = asm.multicolor().unwrap();
        Family {
            name: "plate",
            matrix: ord.matrix,
            colors: ord.colors,
            m: 2,
        }
    };
    let poisson = {
        let p = poisson5(12).unwrap();
        let ord = p.coloring.ordering();
        Family {
            name: "poisson",
            matrix: ord.permute_matrix(&p.matrix).unwrap(),
            colors: ord.partition,
            m: 3,
        }
    };
    let arrow = {
        let (matrix, colors) = arrow_family(96);
        Family {
            name: "arrow",
            matrix,
            colors,
            m: 1,
        }
    };
    vec![plate, poisson, arrow]
}

fn rhs_for(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 13 + 7) % 29) as f64 * 0.1 - 1.2)
        .collect()
}

/// TRUE relative residual against the clean matrix.
fn true_residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let mut r = b.to_vec();
    SparseOp::mul_vec_axpy(a, -1.0, x, &mut r);
    vecops::norm2(&r) / vecops::norm2(b).max(1e-300)
}

/// Solve twice, assert bitwise replay + TRUE-residual convergence, return
/// the first run's payload for counter checks.
fn run_cell<T>(
    label: &str,
    solve: &mut dyn FnMut() -> (Vec<f64>, T),
    a: &CsrMatrix,
    b: &[f64],
) -> T {
    let (x1, out) = solve();
    let (x2, _) = solve();
    assert!(
        x1.iter().zip(&x2).all(|(u, v)| u.to_bits() == v.to_bits()),
        "{label}: faulted replay is not bitwise identical"
    );
    let res = true_residual(a, b, &x1);
    assert!(res < RES_BOUND, "{label}: true residual {res:e}");
    out
}

/// Exact (faults_detected, replacements, ladder steps) for a NaN
/// preconditioner fault consumed ONCE (serial wrappers): detector rungs
/// hand the iterate down and the lower rung runs clean.
fn serial_nan_counters(variant: PcgVariant) -> (usize, usize, usize) {
    match variant {
        PcgVariant::Classic => (1, 1, 0),
        _ => (1, 0, 1),
    }
}

/// Exact counters for a *persistent* (iteration-indexed) NaN fault in the
/// SPMD solver: the fault re-fires on every ladder rung, each recurrence
/// rung detects and steps down, the classic rung restarts in place.
fn spmd_nan_counters(variant: PcgVariant) -> (usize, usize, usize) {
    match variant {
        PcgVariant::Classic => (1, 1, 0),
        PcgVariant::SingleReduction => (2, 1, 1),
        PcgVariant::Pipelined => (3, 1, 2),
        PcgVariant::SStep { .. } => (4, 1, 3),
        PcgVariant::Auto => unreachable!(),
    }
}

#[test]
fn every_variant_survives_injected_faults_across_executors_and_families() {
    for family in families() {
        let a = &family.matrix;
        let n = a.rows();
        let b = rhs_for(n);
        let spmd = ParallelMStepPcg::new(a, &family.colors, vec![1.0; family.m]).unwrap();

        for variant in ALL_VARIANTS {
            // --- serial, NaN out of preconditioner application 2 ---------
            {
                let label = format!("{}/serial/{variant:?}/nan-msolve", family.name);
                let opts = PcgOptions {
                    tol: TOL,
                    criterion: StoppingCriterion::DisplacementChange,
                    variant,
                    recovery: RecoveryPolicy::off(),
                    ..Default::default()
                };
                let stats = run_cell(
                    &label,
                    &mut || {
                        let pre = FaultyPreconditioner::new(
                            MStepSsorPreconditioner::unparametrized(a, &family.colors, family.m)
                                .unwrap(),
                            vec![ApplicationFault {
                                application: 2,
                                index: 3,
                                kind: FaultKind::NaN,
                            }],
                        );
                        let sol = pcg_solve(a, &b, &pre, &opts).expect("faulted serial solve");
                        assert!(sol.converged, "did not converge");
                        assert_eq!(pre.injected(), 1, "fault was not consumed");
                        (sol.x, sol.stats)
                    },
                    a,
                    &b,
                );
                let (faults, replacements, fallbacks) = serial_nan_counters(variant);
                assert_eq!(
                    (stats.faults_detected, stats.replacements, stats.fallbacks),
                    (faults, replacements, fallbacks),
                    "{label}: counters {stats:?}"
                );
                assert_eq!(stats.audits, 0, "{label}: policy pinned off");
            }

            // --- serial, finite SpMV corruption under an audit policy ----
            {
                let label = format!("{}/serial/{variant:?}/audited-spmv", family.name);
                let opts = PcgOptions {
                    tol: TIGHT,
                    criterion: StoppingCriterion::DisplacementChange,
                    variant,
                    recovery: RecoveryPolicy {
                        replacement: Toggle::On,
                        audit_period: 4,
                        ..RecoveryPolicy::default()
                    },
                    ..Default::default()
                };
                let stats = run_cell(
                    &label,
                    &mut || {
                        let op = FaultyOp::new(
                            a.clone(),
                            vec![ApplicationFault {
                                application: 3,
                                index: 3,
                                kind: FaultKind::BitFlip(55),
                            }],
                        );
                        let pre =
                            MStepSsorPreconditioner::unparametrized(a, &family.colors, family.m)
                                .unwrap();
                        let sol = pcg_solve(&op, &b, &pre, &opts).expect("audited serial solve");
                        assert!(sol.converged, "did not converge");
                        (sol.x, sol.stats)
                    },
                    a,
                    &b,
                );
                assert!(stats.audits >= 1, "{label}: no audit ran");
                assert_eq!(
                    stats.faults_detected, 0,
                    "{label}: a finite corruption must not trip the NaN checks"
                );
            }

            // --- SPMD at every thread count ------------------------------
            for threads in [1usize, 2, 4, 8] {
                // NaN out of the iteration-2 preconditioner application:
                // persistent across rung reruns, exact ladder walk.
                {
                    let label = format!("{}/spmd{threads}/{variant:?}/nan-msolve", family.name);
                    let opts = ParallelSolverOptions {
                        threads,
                        tol: TOL,
                        max_iterations: 50_000,
                        variant,
                        recovery: RecoveryPolicy::off(),
                    };
                    let plan = FaultPlan::new(vec![IterationFault {
                        target: FaultTarget::Msolve,
                        iteration: 2,
                        index: 3,
                        kind: FaultKind::NaN,
                    }]);
                    let rep = run_cell(
                        &label,
                        &mut || {
                            let rep = spmd
                                .solve_with_faults(&b, &opts, &plan)
                                .expect("faulted spmd solve");
                            assert!(rep.converged, "did not converge");
                            (rep.x.clone(), rep)
                        },
                        a,
                        &b,
                    );
                    let (faults, replacements, recoveries) = spmd_nan_counters(variant);
                    assert_eq!(
                        (rep.faults_detected, rep.replacements, rep.recoveries),
                        (faults, replacements, recoveries),
                        "{label}"
                    );
                    // Every NaN walk ends on the classic rung.
                    assert_eq!(rep.variant, PcgVariant::Classic, "{label}");
                    assert_eq!(rep.audits, 0, "{label}: policy pinned off");
                }

                // Finite SpMV corruption at iteration 2 under an audit
                // policy: caught by the fused audit (or harmlessly below
                // its bound), never by the non-finite checks.
                {
                    let label = format!("{}/spmd{threads}/{variant:?}/audited-spmv", family.name);
                    let opts = ParallelSolverOptions {
                        threads,
                        tol: TIGHT,
                        max_iterations: 50_000,
                        variant,
                        recovery: RecoveryPolicy {
                            replacement: Toggle::On,
                            audit_period: 4,
                            ..RecoveryPolicy::default()
                        },
                    };
                    let plan = FaultPlan::new(vec![IterationFault {
                        target: FaultTarget::Spmv,
                        iteration: 2,
                        index: 3,
                        kind: FaultKind::BitFlip(55),
                    }]);
                    let rep = run_cell(
                        &label,
                        &mut || {
                            let rep = spmd
                                .solve_with_faults(&b, &opts, &plan)
                                .expect("audited spmd solve");
                            assert!(rep.converged, "did not converge");
                            (rep.x.clone(), rep)
                        },
                        a,
                        &b,
                    );
                    assert!(rep.audits >= 1, "{label}: no audit ran");
                    assert_eq!(
                        rep.faults_detected, 0,
                        "{label}: a finite corruption must not trip the NaN checks"
                    );
                }
            }
        }
    }
}

/// The recovery ladder is preconditioner-agnostic: a NaN out of the
/// barrier-free **polynomial** msolve walks the exact same detection /
/// replacement / rung path as a poisoned SSOR sweep — serially (fault
/// consumed once, lower rung runs clean) and in the SPMD solver
/// (iteration-indexed plan re-fires per rung until the classic rung
/// absorbs it).
#[test]
fn nan_polynomial_msolve_walks_the_same_recovery_ladder() {
    for family in families() {
        let a = &family.matrix;
        let b = rhs_for(a.rows());
        let degree = 2 * family.m;
        let spmd = ParallelMStepPcg::poly(a, &family.colors, PolyKind::Chebyshev, degree).unwrap();

        for variant in ALL_VARIANTS {
            // --- serial, NaN out of polynomial application 2 -------------
            {
                let label = format!("{}/serial/{variant:?}/nan-poly-msolve", family.name);
                let opts = PcgOptions {
                    tol: TOL,
                    criterion: StoppingCriterion::DisplacementChange,
                    variant,
                    recovery: RecoveryPolicy::off(),
                    ..Default::default()
                };
                let stats = run_cell(
                    &label,
                    &mut || {
                        let pre = FaultyPreconditioner::new(
                            PolynomialPreconditioner::chebyshev(a.clone(), degree).unwrap(),
                            vec![ApplicationFault {
                                application: 2,
                                index: 3,
                                kind: FaultKind::NaN,
                            }],
                        );
                        let sol = pcg_solve(a, &b, &pre, &opts).expect("faulted serial poly solve");
                        assert!(sol.converged, "did not converge");
                        assert_eq!(pre.injected(), 1, "fault was not consumed");
                        (sol.x, sol.stats)
                    },
                    a,
                    &b,
                );
                let (faults, replacements, fallbacks) = serial_nan_counters(variant);
                assert_eq!(
                    (stats.faults_detected, stats.replacements, stats.fallbacks),
                    (faults, replacements, fallbacks),
                    "{label}: counters {stats:?}"
                );
            }

            // --- SPMD, persistent NaN at the iteration-2 poly msolve -----
            for threads in [1usize, 2, 4, 8] {
                let label = format!("{}/spmd{threads}/{variant:?}/nan-poly-msolve", family.name);
                let opts = ParallelSolverOptions {
                    threads,
                    tol: TOL,
                    max_iterations: 50_000,
                    variant,
                    recovery: RecoveryPolicy::off(),
                };
                let plan = FaultPlan::new(vec![IterationFault {
                    target: FaultTarget::Msolve,
                    iteration: 2,
                    index: 3,
                    kind: FaultKind::NaN,
                }]);
                let rep = run_cell(
                    &label,
                    &mut || {
                        let rep = spmd
                            .solve_with_faults(&b, &opts, &plan)
                            .expect("faulted spmd poly solve");
                        assert!(rep.converged, "did not converge");
                        (rep.x.clone(), rep)
                    },
                    a,
                    &b,
                );
                let (faults, replacements, recoveries) = spmd_nan_counters(variant);
                assert_eq!(
                    (rep.faults_detected, rep.replacements, rep.recoveries),
                    (faults, replacements, recoveries),
                    "{label}"
                );
                assert_eq!(rep.variant, PcgVariant::Classic, "{label}");
            }
        }
    }
}
