//! Property-based tests (proptest) over the core invariants of the
//! reproduction: sparse-format round trips, coloring validity, SPD
//! preservation, preconditioner symmetry and solver correctness on
//! randomly generated diagonally-dominant SPD systems.

use mspcg::coloring::{greedy_coloring, GreedyStrategy};
use mspcg::core::coeffs::{least_squares_alphas, residual_sup, spd_margin, Weight};
use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{pcg_solve, PcgOptions, StoppingCriterion};
use mspcg::core::preconditioner::Preconditioner;
use mspcg::sparse::{CooMatrix, CsrMatrix, DiaMatrix, Permutation};
use proptest::prelude::*;

/// Random sparse symmetric strictly-diagonally-dominant (hence SPD)
/// matrix of order `n` with roughly `extra` off-diagonal pairs.
fn random_spd(n: usize, extra: usize, seed: u64) -> CsrMatrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut coo = CooMatrix::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    for _ in 0..extra {
        let i = (next() % n as u64) as usize;
        let j = (next() % n as u64) as usize;
        if i == j {
            continue;
        }
        let v = -1.0 - (next() % 100) as f64 / 50.0;
        coo.push_sym(i, j, v).unwrap();
        row_sums[i] += v.abs();
        row_sums[j] += v.abs();
    }
    for (i, &rs) in row_sums.iter().enumerate() {
        coo.push(i, i, rs * 2.0 + 1.0 + (next() % 7) as f64 * 0.3)
            .unwrap();
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_round_trips_through_dense(n in 2usize..12, extra in 0usize..30, seed in 1u64..5000) {
        let a = random_spd(n, extra, seed);
        let d = a.to_dense();
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if d[(i, j)] != 0.0 {
                    coo.push(i, j, d[(i, j)]).unwrap();
                }
            }
        }
        prop_assert_eq!(coo.to_csr(), a);
    }

    #[test]
    fn dia_spmv_equals_csr_spmv(n in 2usize..16, extra in 0usize..40, seed in 1u64..5000) {
        let a = random_spd(n, extra, seed);
        let dia = DiaMatrix::from_csr(&a);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 11) as f64 - 5.0).collect();
        let y1 = a.mul_vec(&x);
        let y2 = dia.mul_vec(&x);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_permutation_preserves_quadratic_form(
        n in 2usize..10, extra in 0usize..25, seed in 1u64..5000, pseed in 1u64..1000
    ) {
        let a = random_spd(n, extra, seed);
        // Random permutation via seeded shuffle.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = pseed;
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        let b = a.permute_sym(&p).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let px = p.gather(&x);
        let qa: f64 = x.iter().zip(&a.mul_vec(&x)).map(|(u, v)| u * v).sum();
        let qb: f64 = px.iter().zip(&b.mul_vec(&px)).map(|(u, v)| u * v).sum();
        prop_assert!((qa - qb).abs() < 1e-10 * qa.abs().max(1.0));
    }

    #[test]
    fn greedy_coloring_is_always_valid(n in 2usize..20, extra in 0usize..60, seed in 1u64..5000) {
        let a = random_spd(n, extra, seed);
        for strategy in [GreedyStrategy::Natural, GreedyStrategy::LargestDegreeFirst, GreedyStrategy::SmallestDegreeLast] {
            let c = greedy_coloring(&a, strategy).unwrap();
            prop_assert!(c.verify_for(&a).is_ok());
        }
    }

    #[test]
    fn multicolor_mstep_pcg_solves_random_spd(
        n in 4usize..24, extra in 2usize..50, seed in 1u64..5000, m in 1usize..4
    ) {
        let a = random_spd(n, extra, seed);
        let coloring = greedy_coloring(&a, GreedyStrategy::Natural).unwrap();
        let ord = coloring.ordering();
        let b = ord.permute_matrix(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let rhs = b.mul_vec(&x_true);
        let pre = MStepSsorPreconditioner::unparametrized(&b, &ord.partition, m).unwrap();
        let sol = pcg_solve(&b, &rhs, &pre, &PcgOptions {
            tol: 1e-12,
            criterion: StoppingCriterion::RelativeResidual,
            ..Default::default()
        }).unwrap();
        prop_assert!(sol.converged);
        for (u, v) in sol.x.iter().zip(&x_true) {
            prop_assert!((u - v).abs() < 1e-6, "{} vs {}", u, v);
        }
    }

    #[test]
    fn mstep_preconditioner_is_symmetric_operator(
        n in 3usize..12, extra in 2usize..25, seed in 1u64..5000, m in 1usize..5
    ) {
        let a = random_spd(n, extra, seed);
        let coloring = greedy_coloring(&a, GreedyStrategy::Natural).unwrap();
        let ord = coloring.ordering();
        let b = ord.permute_matrix(&a).unwrap();
        let pre = MStepSsorPreconditioner::unparametrized(&b, &ord.partition, m).unwrap();
        // Check (M⁻¹eᵢ)ⱼ == (M⁻¹eⱼ)ᵢ for a few index pairs.
        let n = b.rows();
        let apply = |j: usize| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut z = vec![0.0; n];
            pre.apply(&e, &mut z);
            z
        };
        let z0 = apply(0);
        let zl = apply(n - 1);
        prop_assert!((z0[n - 1] - zl[0]).abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_improves_with_m(lo in 0.01f64..0.5, m in 2usize..7) {
        let interval = (lo, 1.0);
        let a_small = least_squares_alphas(m - 1, interval, Weight::Uniform).unwrap();
        let a_large = least_squares_alphas(m, interval, Weight::Uniform).unwrap();
        // The sup-norm proxy should not get (much) worse with higher degree.
        prop_assert!(residual_sup(&a_large, interval) <= residual_sup(&a_small, interval) * 1.01);
        prop_assert!(spd_margin(&a_large, interval) > 0.0);
    }

    #[test]
    fn pcg_iterations_bounded_by_dimension(
        n in 3usize..16, extra in 0usize..30, seed in 1u64..5000
    ) {
        // Exact-arithmetic CG terminates in ≤ n steps; allow rounding slack.
        let a = random_spd(n, extra, seed);
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).recip()).collect();
        let sol = mspcg::core::pcg::cg_solve(&a, &rhs, &PcgOptions {
            tol: 1e-10,
            criterion: StoppingCriterion::RelativeResidual,
            ..Default::default()
        }).unwrap();
        prop_assert!(sol.iterations <= 3 * n + 10, "{} iterations for n = {}", sol.iterations, n);
    }
}
