//! Property-based tests over the core invariants of the reproduction:
//! sparse-format round trips, coloring validity, SPD preservation,
//! preconditioner symmetry and solver correctness on randomly generated
//! diagonally-dominant SPD systems.
//!
//! The container has no property-testing framework, so the tests drive a
//! deterministic xorshift case generator: each property runs over a fixed
//! set of pseudo-random configurations (sizes, densities, seeds), which
//! keeps failures reproducible by construction.

use mspcg::coloring::{greedy_coloring, GreedyStrategy};
use mspcg::core::coeffs::{least_squares_alphas, residual_sup, spd_margin, Weight};
use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{pcg_solve, PcgOptions, StoppingCriterion};
use mspcg::core::preconditioner::Preconditioner;
use mspcg::sparse::{CooMatrix, CsrMatrix, DiaMatrix, Permutation, SellCsMatrix, SparseOp};

/// Cases per property (matches the old proptest configuration).
const CASES: u64 = 24;

mod common;
use common::Rng;

/// Random sparse symmetric strictly-diagonally-dominant (hence SPD)
/// matrix of order `n` with roughly `extra` off-diagonal pairs.
fn random_spd(n: usize, extra: usize, seed: u64) -> CsrMatrix {
    let mut rng = Rng::new(seed);
    let mut coo = CooMatrix::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    for _ in 0..extra {
        let i = rng.range(0, n);
        let j = rng.range(0, n);
        if i == j {
            continue;
        }
        let v = -1.0 - (rng.next() % 100) as f64 / 50.0;
        coo.push_sym(i, j, v).unwrap();
        row_sums[i] += v.abs();
        row_sums[j] += v.abs();
    }
    for (i, &rs) in row_sums.iter().enumerate() {
        coo.push(i, i, rs * 2.0 + 1.0 + (rng.next() % 7) as f64 * 0.3)
            .unwrap();
    }
    coo.to_csr()
}

#[test]
fn csr_round_trips_through_dense() {
    let mut rng = Rng::new(1);
    for case in 0..CASES {
        let n = rng.range(2, 12);
        let extra = rng.range(0, 30);
        let a = random_spd(n, extra, 1 + rng.next() % 5000);
        let d = a.to_dense();
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if d[(i, j)] != 0.0 {
                    coo.push(i, j, d[(i, j)]).unwrap();
                }
            }
        }
        assert_eq!(coo.to_csr(), a, "case {case}");
    }
}

#[test]
fn dia_spmv_equals_csr_spmv() {
    let mut rng = Rng::new(2);
    for case in 0..CASES {
        let n = rng.range(2, 16);
        let extra = rng.range(0, 40);
        let a = random_spd(n, extra, 1 + rng.next() % 5000);
        let dia = DiaMatrix::from_csr(&a);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 11) as f64 - 5.0).collect();
        let y1 = a.mul_vec(&x);
        let y2 = dia.mul_vec(&x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12, "case {case}: {u} vs {v}");
        }
    }
}

/// CSR ↔ SELL-C-σ must be a lossless round trip for random sparsity
/// patterns and random (C, σ) layouts, and the SELL SpMV must agree with
/// the CSR kernel **bitwise** (the ascending-column per-row summation
/// contract of `SparseOp`).
#[test]
fn sellcs_round_trips_and_matches_csr_bitwise() {
    let mut rng = Rng::new(7);
    for case in 0..CASES {
        let n = rng.range(2, 90);
        let extra = rng.range(0, 4 * n);
        let a = random_spd(n, extra, 1 + rng.next() % 5000);
        let c = 1 << rng.range(0, 6); // C ∈ {1, 2, 4, 8, 16, 32}
        let sigma = c * (1 + rng.range(0, 8)); // σ a random multiple of C
        let sell = SellCsMatrix::from_csr(&a, c, sigma).unwrap();
        assert_eq!(sell.to_csr(), a, "case {case}: C = {c}, σ = {sigma}");
        // Padding accounting: the real entries are conserved and the
        // per-slice tallies sum to the totals.
        assert_eq!(sell.nnz(), a.nnz(), "case {case}");
        let padded: usize = (0..sell.num_slices())
            .map(|s| sell.slice_width(s) * c.min(n - s * c))
            .sum();
        assert_eq!(padded, sell.padded_len(), "case {case}");
        let real: usize = (0..sell.num_slices()).map(|s| sell.slice_nnz(s)).sum();
        assert_eq!(real, sell.nnz(), "case {case}");

        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 29 + 3) % 23) as f64 * 0.17 - 1.9)
            .collect();
        let y_csr = a.mul_vec(&x);
        let y_sell = SparseOp::mul_vec(&sell, &x);
        assert!(
            y_csr
                .iter()
                .zip(&y_sell)
                .all(|(u, v)| u.to_bits() == v.to_bits()),
            "case {case}: SELL-C-{c}-σ{sigma} SpMV differs from CSR"
        );
    }
}

/// The wide-row family (arrow matrices with a random dense head): the
/// shapes SELL-C-σ exists for must also round-trip and multiply bitwise
/// identically, including through the fused accumulate kernel.
#[test]
fn sellcs_wide_row_spmv_equals_csr() {
    let mut rng = Rng::new(11);
    for case in 0..CASES {
        let n = rng.range(20, 200);
        let head = rng.range(1, 9).min(n / 2);
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 8.0 + (rng.next() % 5) as f64).unwrap();
        }
        for d in 0..head {
            for j in head..n {
                coo.push_sym(d, j, -1e-3 * ((d + j) % 7 + 1) as f64)
                    .unwrap();
            }
        }
        let a = coo.to_csr();
        let sell = SellCsMatrix::from_csr_default(&a);
        assert_eq!(sell.to_csr(), a, "case {case}");
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 1) % 17) as f64 * 0.3).collect();
        let y_csr = a.mul_vec(&x);
        let y_sell = SparseOp::mul_vec(&sell, &x);
        assert!(
            y_csr
                .iter()
                .zip(&y_sell)
                .all(|(u, v)| u.to_bits() == v.to_bits()),
            "case {case}: arrow SpMV differs"
        );
        let mut acc_csr = vec![0.25; n];
        let mut acc_sell = vec![0.25; n];
        a.mul_vec_axpy(-1.5, &x, &mut acc_csr);
        SparseOp::mul_vec_axpy(&sell, -1.5, &x, &mut acc_sell);
        assert!(
            acc_csr
                .iter()
                .zip(&acc_sell)
                .all(|(u, v)| u.to_bits() == v.to_bits()),
            "case {case}: arrow axpy differs"
        );
    }
}

#[test]
fn symmetric_permutation_preserves_quadratic_form() {
    let mut rng = Rng::new(3);
    for case in 0..CASES {
        let n = rng.range(2, 10);
        let extra = rng.range(0, 25);
        let a = random_spd(n, extra, 1 + rng.next() % 5000);
        // Random permutation via seeded shuffle.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.range(0, i + 1);
            order.swap(i, j);
        }
        let p = Permutation::from_new_to_old(order).unwrap();
        let b = a.permute_sym(&p).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let px = p.gather(&x);
        let qa: f64 = x.iter().zip(&a.mul_vec(&x)).map(|(u, v)| u * v).sum();
        let qb: f64 = px.iter().zip(&b.mul_vec(&px)).map(|(u, v)| u * v).sum();
        assert!(
            (qa - qb).abs() < 1e-10 * qa.abs().max(1.0),
            "case {case}: {qa} vs {qb}"
        );
    }
}

#[test]
fn greedy_coloring_is_always_valid() {
    let mut rng = Rng::new(4);
    for case in 0..CASES {
        let n = rng.range(2, 20);
        let extra = rng.range(0, 60);
        let a = random_spd(n, extra, 1 + rng.next() % 5000);
        for strategy in [
            GreedyStrategy::Natural,
            GreedyStrategy::LargestDegreeFirst,
            GreedyStrategy::SmallestDegreeLast,
        ] {
            let c = greedy_coloring(&a, strategy).unwrap();
            assert!(c.verify_for(&a).is_ok(), "case {case}, {strategy:?}");
        }
    }
}

#[test]
fn multicolor_mstep_pcg_solves_random_spd() {
    let mut rng = Rng::new(5);
    for case in 0..CASES {
        let n = rng.range(4, 24);
        let extra = rng.range(2, 50);
        let m = rng.range(1, 4);
        let a = random_spd(n, extra, 1 + rng.next() % 5000);
        let coloring = greedy_coloring(&a, GreedyStrategy::Natural).unwrap();
        let ord = coloring.ordering();
        let b = ord.permute_matrix(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let rhs = b.mul_vec(&x_true);
        let pre = MStepSsorPreconditioner::unparametrized(&b, &ord.partition, m).unwrap();
        let sol = pcg_solve(
            &b,
            &rhs,
            &pre,
            &PcgOptions {
                tol: 1e-12,
                criterion: StoppingCriterion::RelativeResidual,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sol.converged, "case {case}");
        for (u, v) in sol.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6, "case {case}: {u} vs {v}");
        }
    }
}

#[test]
fn mstep_preconditioner_is_symmetric_operator() {
    let mut rng = Rng::new(6);
    for case in 0..CASES {
        let n = rng.range(3, 12);
        let extra = rng.range(2, 25);
        let m = rng.range(1, 5);
        let a = random_spd(n, extra, 1 + rng.next() % 5000);
        let coloring = greedy_coloring(&a, GreedyStrategy::Natural).unwrap();
        let ord = coloring.ordering();
        let b = ord.permute_matrix(&a).unwrap();
        let pre = MStepSsorPreconditioner::unparametrized(&b, &ord.partition, m).unwrap();
        // Check (M⁻¹eᵢ)ⱼ == (M⁻¹eⱼ)ᵢ for the extreme index pair.
        let n = b.rows();
        let apply = |j: usize| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let mut z = vec![0.0; n];
            pre.apply(&e, &mut z);
            z
        };
        let z0 = apply(0);
        let zl = apply(n - 1);
        assert!(
            (z0[n - 1] - zl[0]).abs() < 1e-10,
            "case {case}: {} vs {}",
            z0[n - 1],
            zl[0]
        );
    }
}

#[test]
fn least_squares_residual_improves_with_m() {
    let mut rng = Rng::new(7);
    for case in 0..CASES {
        let lo = 0.01 + (rng.next() % 490) as f64 * 1e-3; // 0.01..0.5
        let m = rng.range(2, 7);
        let interval = (lo, 1.0);
        let a_small = least_squares_alphas(m - 1, interval, Weight::Uniform).unwrap();
        let a_large = least_squares_alphas(m, interval, Weight::Uniform).unwrap();
        // The sup-norm proxy should not get (much) worse with higher degree.
        assert!(
            residual_sup(&a_large, interval) <= residual_sup(&a_small, interval) * 1.01,
            "case {case} (lo = {lo}, m = {m})"
        );
        assert!(spd_margin(&a_large, interval) > 0.0, "case {case}");
    }
}

#[test]
fn pcg_iterations_bounded_by_dimension() {
    let mut rng = Rng::new(8);
    for case in 0..CASES {
        let n = rng.range(3, 16);
        let extra = rng.range(0, 30);
        // Exact-arithmetic CG terminates in ≤ n steps; allow rounding slack.
        let a = random_spd(n, extra, 1 + rng.next() % 5000);
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).recip()).collect();
        let sol = mspcg::core::pcg::cg_solve(
            &a,
            &rhs,
            &PcgOptions {
                tol: 1e-10,
                criterion: StoppingCriterion::RelativeResidual,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            sol.iterations <= 3 * n + 10,
            "case {case}: {} iterations for n = {}",
            sol.iterations,
            n
        );
    }
}
