//! Cross-variant conformance harness.
//!
//! **One** parameterized property loop runs *every* [`PcgVariant`] ×
//! {serial, SPMD 1/2/4/8 threads} × {plate, Poisson, arrow} × formats
//! {CSR, SELL-C-σ} and asserts, for every cell of that matrix:
//!
//! * **(a) convergence to the same tolerance** — the solve reports
//!   converged and the TRUE recomputed residual `‖f − Ku‖/‖f‖` is below a
//!   common bound,
//! * **(b) bitwise within-variant replay** — the same configuration
//!   solved twice returns bit-identical iterates and identical iteration
//!   counts (the determinism contract; *across* variants only closeness
//!   is promised, the recurrences follow different rounding paths),
//! * **(c) iteration counts within a fixed slack across variants** —
//!   every cell stays within [`ITER_SLACK`] of the serial classic CSR
//!   baseline of its family.
//!
//! A future variant inherits the whole matrix by adding one entry to
//! [`ALL_VARIANTS`]: the closed `match` in `exhaustiveness_guard` refuses
//! to compile until the new enum entry is listed, so the coverage cannot
//! silently lag the enum.

use mspcg::coloring::Coloring;
use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{pcg_solve, PcgOptions, PcgVariant, StoppingCriterion};
use mspcg::core::poly::PolynomialPreconditioner;
use mspcg::fem::plate::PlaneStressProblem;
use mspcg::fem::poisson::poisson5;
use mspcg::parallel::{ParallelMStepPcg, ParallelSolverOptions};
use mspcg::sparse::{vecops, CooMatrix, CsrMatrix, Partition, PolyKind, SellCsMatrix};

/// Every variant the harness covers. The s-step schedule is exercised at
/// two block sizes — block granularity (convergence is only checked every
/// `s` iterations) is why [`ITER_SLACK`] is phrased as a slack, not an
/// equality.
const ALL_VARIANTS: [PcgVariant; 5] = [
    PcgVariant::Classic,
    PcgVariant::SingleReduction,
    PcgVariant::Pipelined,
    PcgVariant::SStep { s: 2 },
    PcgVariant::SStep { s: 4 },
];

/// Compile-time exhaustiveness guard: a new `PcgVariant` entry makes this
/// `match` non-exhaustive, failing the build until the variant is added
/// to [`ALL_VARIANTS`] (Auto is the absence of a pin, not a schedule).
#[allow(dead_code)]
fn exhaustiveness_guard(v: PcgVariant) {
    match v {
        PcgVariant::Auto
        | PcgVariant::Classic
        | PcgVariant::SingleReduction
        | PcgVariant::Pipelined
        | PcgVariant::SStep { .. } => {}
    }
}

/// The paper's displacement test, common to the serial and SPMD solvers.
const TOL: f64 = 1e-8;
/// Bound on the TRUE recomputed relative residual at convergence.
const RES_BOUND: f64 = 1e-6;
/// Fixed slack on iteration counts across variants and executors.
const ITER_SLACK: isize = 10;

mod common;
use common::Rng;

/// One test family: a color-blocked SPD system plus its preconditioner
/// depth.
struct Family {
    name: &'static str,
    matrix: CsrMatrix,
    colors: Partition,
    m: usize,
}

/// The wide-row arrow family (one dense condensation row over a
/// tridiagonal body) in a 3-color blocking: {row 0}, {odd}, {even ≥ 2} —
/// row 0 couples only outwards, body rows couple to the other parity and
/// to row 0, so no color block carries internal coupling.
fn arrow_family(n: usize) -> (CsrMatrix, Partition) {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 8.0).unwrap();
        if i + 1 < n {
            coo.push_sym(i, i + 1, -1.0).unwrap();
        }
    }
    // The arrow head: small symmetric couplings from row 0 to the whole
    // body (skipping column 1, already a tridiagonal neighbour). Strict
    // diagonal dominance keeps the matrix SPD.
    for j in 2..n {
        coo.push_sym(0, j, -2e-3).unwrap();
    }
    let a = coo.to_csr();
    let labels: Vec<usize> = (0..n)
        .map(|i| {
            if i == 0 {
                0
            } else if i % 2 == 1 {
                1
            } else {
                2
            }
        })
        .collect();
    let ord = Coloring::from_labels(labels, 3).unwrap().ordering();
    (ord.permute_matrix(&a).unwrap(), ord.partition)
}

fn families() -> Vec<Family> {
    let plate = {
        let asm = PlaneStressProblem::unit_square(8).assemble().unwrap();
        let ord = asm.multicolor().unwrap();
        Family {
            name: "plate",
            matrix: ord.matrix,
            colors: ord.colors,
            m: 2,
        }
    };
    let poisson = {
        let p = poisson5(16).unwrap();
        let ord = p.coloring.ordering();
        Family {
            name: "poisson",
            matrix: ord.permute_matrix(&p.matrix).unwrap(),
            colors: ord.partition,
            m: 3,
        }
    };
    let arrow = {
        let (matrix, colors) = arrow_family(120);
        Family {
            name: "arrow",
            matrix,
            colors,
            m: 1,
        }
    };
    vec![plate, poisson, arrow]
}

/// TRUE relative residual of an iterate (recomputed, not recursive).
fn true_residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let mut r = b.to_vec();
    a.mul_vec_axpy(-1.0, x, &mut r);
    vecops::norm2(&r) / vecops::norm2(b).max(1e-300)
}

/// One conformance cell: solve twice, assert convergence + bitwise
/// replay, return the (replay-checked) iterate and iteration count.
fn run_cell(
    label: &str,
    solve: &mut dyn FnMut() -> (Vec<f64>, usize),
    a: &CsrMatrix,
    b: &[f64],
) -> (Vec<f64>, usize) {
    let (x1, it1) = solve();
    let (x2, it2) = solve();
    // (b) bitwise within-variant replay.
    assert_eq!(it1, it2, "{label}: replay changed the iteration count");
    assert!(
        x1.iter().zip(&x2).all(|(u, v)| u.to_bits() == v.to_bits()),
        "{label}: replay is not bitwise identical"
    );
    // (a) convergence to the same tolerance, via the TRUE residual.
    let res = true_residual(a, b, &x1);
    assert!(res < RES_BOUND, "{label}: true residual {res}");
    (x1, it1)
}

/// The parameterized conformance loop of the issue: every variant ×
/// executor × family × format, in one place.
#[test]
fn every_variant_conforms_across_executors_families_and_formats() {
    let mut rng = Rng::new(0xD1CE);
    for family in families() {
        let a = &family.matrix;
        let n = a.rows();
        let sell = SellCsMatrix::from_csr_default(a);
        let b: Vec<f64> = (0..n).map(|_| rng.unit() * 2.0 - 1.0).collect();
        let pre = MStepSsorPreconditioner::unparametrized(a, &family.colors, family.m)
            .expect("preconditioner");
        let spmd_csr = ParallelMStepPcg::new(a, &family.colors, vec![1.0; family.m]).unwrap();
        let spmd_sell = ParallelMStepPcg::new(&sell, &family.colors, vec![1.0; family.m]).unwrap();

        // (c) baseline: serial classic on CSR.
        let baseline = {
            let opts = PcgOptions {
                tol: TOL,
                criterion: StoppingCriterion::DisplacementChange,
                variant: PcgVariant::Classic,
                ..Default::default()
            };
            pcg_solve(a, &b, &pre, &opts).expect("baseline").iterations as isize
        };

        let check_iters = |label: &str, iters: usize| {
            assert!(
                (iters as isize - baseline).abs() <= ITER_SLACK,
                "{label}: {iters} iterations vs baseline {baseline}"
            );
        };

        for variant in ALL_VARIANTS {
            let serial_opts = PcgOptions {
                tol: TOL,
                criterion: StoppingCriterion::DisplacementChange,
                variant,
                ..Default::default()
            };
            // Serial executor, both storage formats. The solvers are
            // generic over `SparseOp`; the preconditioner sees identical
            // structure either way.
            {
                let label = format!("{}/serial/csr/{variant:?}", family.name);
                let (_, iters) = run_cell(
                    &label,
                    &mut || {
                        let s = pcg_solve(a, &b, &pre, &serial_opts).expect("serial csr");
                        assert!(s.converged);
                        (s.x, s.iterations)
                    },
                    a,
                    &b,
                );
                check_iters(&label, iters);
            }
            {
                let label = format!("{}/serial/sellcs/{variant:?}", family.name);
                let (_, iters) = run_cell(
                    &label,
                    &mut || {
                        let s = pcg_solve(&sell, &b, &pre, &serial_opts).expect("serial sell");
                        assert!(s.converged);
                        (s.x, s.iterations)
                    },
                    a,
                    &b,
                );
                check_iters(&label, iters);
            }
            // SPMD executor at 1/2/4/8 workers, both formats. A
            // recurrence variant that falls back near convergence reports
            // the classic schedule — conformance only requires the
            // *solve* to conform, so the report's variant is not pinned
            // here (the schedule itself is pinned by the counter tests).
            for threads in [1usize, 2, 4, 8] {
                let spmd_opts = ParallelSolverOptions {
                    threads,
                    tol: TOL,
                    max_iterations: 50_000,
                    variant,
                    ..Default::default()
                };
                for (fmt, solver) in [("csr", &spmd_csr), ("sellcs", &spmd_sell)] {
                    let label = format!("{}/spmd{threads}/{fmt}/{variant:?}", family.name);
                    let (_, iters) = run_cell(
                        &label,
                        &mut || {
                            let rep = solver.solve(&b, &spmd_opts).expect("spmd");
                            assert!(rep.converged);
                            (rep.x, rep.iterations)
                        },
                        a,
                        &b,
                    );
                    check_iters(&label, iters);
                }
            }
        }
    }
}

/// The **polynomial-preconditioner axis** of the same matrix: every
/// variant × executor × family × format again, with the barrier-free
/// Newton–Chebyshev msolve in place of the m-step SSOR sweeps. The degree
/// is `2m` — the flop-matched exchange rate (a degree-`2m` chain streams
/// the matrix as often as `m` forward+backward sweeps) — and the slack
/// baseline is the serial classic CSR *polynomial* solve of each family,
/// since the two preconditioners converge on different iteration counts.
#[test]
fn every_variant_conforms_with_polynomial_preconditioning() {
    let mut rng = Rng::new(0xCEB1);
    for family in families() {
        let a = &family.matrix;
        let n = a.rows();
        let sell = SellCsMatrix::from_csr_default(a);
        let b: Vec<f64> = (0..n).map(|_| rng.unit() * 2.0 - 1.0).collect();
        let degree = 2 * family.m;
        let pre =
            PolynomialPreconditioner::chebyshev(a.clone(), degree).expect("poly preconditioner");
        let spmd_csr =
            ParallelMStepPcg::poly(a, &family.colors, PolyKind::Chebyshev, degree).unwrap();
        let spmd_sell =
            ParallelMStepPcg::poly(&sell, &family.colors, PolyKind::Chebyshev, degree).unwrap();

        // (c) baseline: serial classic on CSR, polynomial msolve.
        let baseline = {
            let opts = PcgOptions {
                tol: TOL,
                criterion: StoppingCriterion::DisplacementChange,
                variant: PcgVariant::Classic,
                ..Default::default()
            };
            pcg_solve(a, &b, &pre, &opts).expect("baseline").iterations as isize
        };

        let check_iters = |label: &str, iters: usize| {
            assert!(
                (iters as isize - baseline).abs() <= ITER_SLACK,
                "{label}: {iters} iterations vs baseline {baseline}"
            );
        };

        for variant in ALL_VARIANTS {
            let serial_opts = PcgOptions {
                tol: TOL,
                criterion: StoppingCriterion::DisplacementChange,
                variant,
                ..Default::default()
            };
            for (fmt, op) in [("csr", None), ("sellcs", Some(&sell))] {
                let label = format!("{}/serial/{fmt}/{variant:?}/poly", family.name);
                let (_, iters) = run_cell(
                    &label,
                    &mut || {
                        let s = match op {
                            None => pcg_solve(a, &b, &pre, &serial_opts),
                            Some(sell) => pcg_solve(sell, &b, &pre, &serial_opts),
                        }
                        .expect("serial poly");
                        assert!(s.converged);
                        (s.x, s.iterations)
                    },
                    a,
                    &b,
                );
                check_iters(&label, iters);
            }
            for threads in [1usize, 2, 4, 8] {
                let spmd_opts = ParallelSolverOptions {
                    threads,
                    tol: TOL,
                    max_iterations: 50_000,
                    variant,
                    ..Default::default()
                };
                for (fmt, solver) in [("csr", &spmd_csr), ("sellcs", &spmd_sell)] {
                    let label = format!("{}/spmd{threads}/{fmt}/{variant:?}/poly", family.name);
                    let (_, iters) = run_cell(
                        &label,
                        &mut || {
                            let rep = solver.solve(&b, &spmd_opts).expect("spmd poly");
                            assert!(rep.converged);
                            (rep.x, rep.iterations)
                        },
                        a,
                        &b,
                    );
                    check_iters(&label, iters);
                }
            }
        }
    }
}
