//! Threaded-solver integration: the SPMD executor must agree with the
//! sequential reference on the paper's plate problem, for every thread
//! count, deterministically.

use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{pcg_solve, PcgOptions};
use mspcg::fem::plate::PlaneStressProblem;
use mspcg::parallel::{ParallelMStepPcg, ParallelSolverOptions};

#[test]
fn threaded_matches_sequential_across_thread_counts() {
    let asm = PlaneStressProblem::unit_square(10).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let m = 2usize;

    let pre = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m).unwrap();
    let seq = pcg_solve(
        &ord.matrix,
        &ord.rhs,
        &pre,
        &PcgOptions {
            tol: 1e-9,
            ..Default::default()
        },
    )
    .unwrap();

    let par = ParallelMStepPcg::new(&ord.matrix, &ord.colors, vec![1.0; m]).unwrap();
    for threads in [1usize, 2, 3, 5, 8] {
        let rep = par
            .solve(
                &ord.rhs,
                &ParallelSolverOptions {
                    threads,
                    tol: 1e-9,
                    max_iterations: 50_000,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(rep.converged, "threads = {threads}");
        assert!(
            (rep.iterations as isize - seq.iterations as isize).abs() <= 2,
            "threads = {threads}: {} vs {}",
            rep.iterations,
            seq.iterations
        );
        for (u, v) in rep.x.iter().zip(&seq.x) {
            assert!((u - v).abs() < 1e-7, "threads = {threads}");
        }
    }
}

#[test]
fn parametrized_coefficients_work_threaded() {
    let asm = PlaneStressProblem::unit_square(8).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let pre = MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, 3).unwrap();
    let alphas = pre.alphas().to_vec();

    let par = ParallelMStepPcg::new(&ord.matrix, &ord.colors, alphas).unwrap();
    let rep = par
        .solve(
            &ord.rhs,
            &ParallelSolverOptions {
                threads: 4,
                tol: 1e-9,
                max_iterations: 50_000,
                ..Default::default()
            },
        )
        .unwrap();
    let seq = pcg_solve(
        &ord.matrix,
        &ord.rhs,
        &pre,
        &PcgOptions {
            tol: 1e-9,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        (rep.iterations as isize - seq.iterations as isize).abs() <= 2,
        "{} vs {}",
        rep.iterations,
        seq.iterations
    );
}

#[test]
fn threaded_cg_mode_matches_sequential_cg() {
    let asm = PlaneStressProblem::unit_square(8).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let par = ParallelMStepPcg::new(&ord.matrix, &ord.colors, vec![]).unwrap();
    let rep = par
        .solve(
            &ord.rhs,
            &ParallelSolverOptions {
                threads: 3,
                tol: 1e-8,
                max_iterations: 50_000,
                ..Default::default()
            },
        )
        .unwrap();
    let seq = mspcg::core::pcg::cg_solve(
        &ord.matrix,
        &ord.rhs,
        &PcgOptions {
            tol: 1e-8,
            ..Default::default()
        },
    )
    .unwrap();
    assert!((rep.iterations as isize - seq.iterations as isize).abs() <= 2);
}

#[test]
fn repeated_threaded_solves_are_bitwise_identical() {
    let asm = PlaneStressProblem::unit_square(9).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let par = ParallelMStepPcg::new(&ord.matrix, &ord.colors, vec![1.0; 2]).unwrap();
    let opts = ParallelSolverOptions {
        threads: 4,
        tol: 1e-8,
        max_iterations: 50_000,
        ..Default::default()
    };
    let a = par.solve(&ord.rhs, &opts).unwrap();
    let b = par.solve(&ord.rhs, &opts).unwrap();
    assert_eq!(a.x, b.x);
    assert_eq!(a.iterations, b.iterations);
}
