//! The determinism contract of the data-parallel kernel layer, end to
//! end: every kernel — BLAS-1 reductions, CSR SpMV, the multicolor SSOR
//! sweeps, and a *complete* m-step SSOR PCG solve — must produce bitwise
//! identical results for 1, 2, 4 and 8 worker threads, because chunk
//! boundaries and reduction order depend only on the problem size.

use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{pcg_solve_into, PcgOptions, PcgWorkspace};
use mspcg::core::splitting::Splitting;
use mspcg::core::ssor::MulticolorSsor;
use mspcg::fem::poisson::poisson5;
use mspcg::sparse::{par, vecops, CsrMatrix, Partition};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The thread budget is process global; sweep one test at a time.
fn sweep_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Color-blocked red/black Poisson system on an `n × n` grid.
fn ordered_poisson(n: usize) -> (CsrMatrix, Partition, Vec<f64>) {
    let p = poisson5(n).expect("poisson");
    let ord = p.coloring.ordering();
    let matrix = ord.permute_matrix(&p.matrix).expect("permute");
    let rhs = ord.permutation.gather(&p.rhs);
    (matrix, ord.partition, rhs)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn blas1_kernels_bitwise_across_thread_counts() {
    let _guard = sweep_lock();
    let n = 200_000usize;
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 37 + 11) % 1013) as f64 * 1e-3 - 0.5)
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| ((i * 53 + 5) % 911) as f64 * 1e-3 - 0.4)
        .collect();

    let before = par::max_threads();
    par::set_max_threads(1);
    let d1 = vecops::dot(&x, &y);
    let n1 = vecops::norm2(&x);
    let i1 = vecops::norm_inf(&y);
    let mut ax1 = y.clone();
    vecops::axpy(0.37, &x, &mut ax1);
    let mut xb1 = y.clone();
    vecops::xpby(&x, -0.83, &mut xb1);

    for t in [2usize, 4, 8] {
        par::set_max_threads(t);
        assert_eq!(d1.to_bits(), vecops::dot(&x, &y).to_bits(), "dot, t = {t}");
        assert_eq!(n1.to_bits(), vecops::norm2(&x).to_bits(), "norm2, t = {t}");
        assert_eq!(
            i1.to_bits(),
            vecops::norm_inf(&y).to_bits(),
            "norm_inf, t = {t}"
        );
        let mut ax = y.clone();
        vecops::axpy(0.37, &x, &mut ax);
        assert_eq!(bits(&ax1), bits(&ax), "axpy, t = {t}");
        let mut xb = y.clone();
        vecops::xpby(&x, -0.83, &mut xb);
        assert_eq!(bits(&xb1), bits(&xb), "xpby, t = {t}");
    }
    par::set_max_threads(before);
}

#[test]
fn spmv_and_ssor_sweeps_bitwise_across_thread_counts() {
    let _guard = sweep_lock();
    let (matrix, colors, rhs) = ordered_poisson(192); // 36 864 unknowns
    let ssor = MulticolorSsor::new(matrix.clone(), colors, 1.0).unwrap();
    let alphas = [1.0, 0.8, 1.1];

    let before = par::max_threads();
    par::set_max_threads(1);
    let spmv1 = matrix.mul_vec(&rhs);
    let mut z1 = vec![0.0; matrix.rows()];
    ssor.msolve(&alphas, &rhs, &mut z1);

    for t in [2usize, 4, 8] {
        par::set_max_threads(t);
        assert_eq!(bits(&spmv1), bits(&matrix.mul_vec(&rhs)), "spmv, t = {t}");
        let mut zt = vec![0.0; matrix.rows()];
        ssor.msolve(&alphas, &rhs, &mut zt);
        assert_eq!(bits(&z1), bits(&zt), "msolve, t = {t}");
    }
    par::set_max_threads(before);
}

#[test]
fn full_pcg_solve_bitwise_across_thread_counts() {
    let _guard = sweep_lock();
    let (matrix, colors, rhs) = ordered_poisson(128); // 16 384 unknowns
    let pre = MStepSsorPreconditioner::unparametrized(&matrix, &colors, 2).unwrap();
    let opts = PcgOptions {
        tol: 1e-8,
        ..Default::default()
    };

    let mut ws = PcgWorkspace::new(matrix.rows());
    let solve = |ws: &mut PcgWorkspace| {
        let mut u = vec![0.0; matrix.rows()];
        let rep = pcg_solve_into(&matrix, &rhs, &mut u, &pre, &opts, ws).unwrap();
        (u, rep.iterations)
    };

    let before = par::max_threads();
    par::set_max_threads(1);
    let (u1, it1) = solve(&mut ws);
    for t in [2usize, 4, 8] {
        par::set_max_threads(t);
        let (ut, itt) = solve(&mut ws);
        assert_eq!(it1, itt, "iteration count differs at t = {t}");
        assert_eq!(bits(&u1), bits(&ut), "solution differs at t = {t}");
    }
    par::set_max_threads(before);
}
