//! The determinism contract of the data-parallel kernel layer, end to
//! end: every kernel — BLAS-1 reductions, CSR SpMV, the multicolor SSOR
//! sweeps, and a *complete* m-step SSOR PCG solve — must produce bitwise
//! identical results for 1, 2, 4 and 8 worker threads, because chunk
//! boundaries and reduction order depend only on the problem size.

use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::multi::{pcg_solve_multi, MultiRhsWorkspace};
use mspcg::core::pcg::{pcg_solve_into, PcgOptions, PcgWorkspace};
use mspcg::core::splitting::Splitting;
use mspcg::core::ssor::MulticolorSsor;
use mspcg::fem::poisson::poisson5;
use mspcg::sparse::{par, vecops, AutoOp, CsrMatrix, Partition, SellCsMatrix};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The thread budget is process global; sweep one test at a time.
fn sweep_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Color-blocked red/black Poisson system on an `n × n` grid.
fn ordered_poisson(n: usize) -> (CsrMatrix, Partition, Vec<f64>) {
    let p = poisson5(n).expect("poisson");
    let ord = p.coloring.ordering();
    let matrix = ord.permute_matrix(&p.matrix).expect("permute");
    let rhs = ord.permutation.gather(&p.rhs);
    (matrix, ord.partition, rhs)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn blas1_kernels_bitwise_across_thread_counts() {
    let _guard = sweep_lock();
    let n = 200_000usize;
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 37 + 11) % 1013) as f64 * 1e-3 - 0.5)
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| ((i * 53 + 5) % 911) as f64 * 1e-3 - 0.4)
        .collect();

    let before = par::max_threads();
    par::set_max_threads(1);
    let d1 = vecops::dot(&x, &y);
    let n1 = vecops::norm2(&x);
    let i1 = vecops::norm_inf(&y);
    let mut ax1 = y.clone();
    vecops::axpy(0.37, &x, &mut ax1);
    let mut xb1 = y.clone();
    vecops::xpby(&x, -0.83, &mut xb1);

    for t in [2usize, 4, 8] {
        par::set_max_threads(t);
        assert_eq!(d1.to_bits(), vecops::dot(&x, &y).to_bits(), "dot, t = {t}");
        assert_eq!(n1.to_bits(), vecops::norm2(&x).to_bits(), "norm2, t = {t}");
        assert_eq!(
            i1.to_bits(),
            vecops::norm_inf(&y).to_bits(),
            "norm_inf, t = {t}"
        );
        let mut ax = y.clone();
        vecops::axpy(0.37, &x, &mut ax);
        assert_eq!(bits(&ax1), bits(&ax), "axpy, t = {t}");
        let mut xb = y.clone();
        vecops::xpby(&x, -0.83, &mut xb);
        assert_eq!(bits(&xb1), bits(&xb), "xpby, t = {t}");
    }
    par::set_max_threads(before);
}

/// The fused CG-iteration kernels must agree with the unfused kernel
/// sequence bitwise — and both must be thread-count insensitive. This is
/// the acceptance gate for rewiring `pcg_solve_into` onto the fused path.
#[test]
fn fused_kernels_bitwise_equal_unfused_across_thread_counts() {
    let _guard = sweep_lock();
    let n = 150_000usize;
    let alpha = 0.8125;
    let p: Vec<f64> = (0..n)
        .map(|i| ((i * 31 + 17) % 1009) as f64 * 1e-3 - 0.5)
        .collect();
    let kp: Vec<f64> = (0..n)
        .map(|i| ((i * 43 + 3) % 977) as f64 * 1e-3 - 0.45)
        .collect();
    let u0: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) % 127) as f64 * 0.01).collect();
    let r0: Vec<f64> = (0..n)
        .map(|i| ((i * 19 + 11) % 113) as f64 * 0.02 - 1.0)
        .collect();
    let w: Vec<f64> = (0..n)
        .map(|i| ((i * 59 + 23) % 89) as f64 * 0.01 - 0.4)
        .collect();

    let before = par::max_threads();
    // Unfused reference at 1 thread.
    par::set_max_threads(1);
    let mut u_ref = u0.clone();
    let mut r_ref = r0.clone();
    vecops::axpy(alpha, &p, &mut u_ref);
    let p_norm_ref = vecops::norm_inf(&p);
    vecops::axpy(-alpha, &kp, &mut r_ref);
    let r_norm_ref = vecops::norm_inf(&r_ref);
    let r2_ref = vecops::norm2(&r_ref);
    let mut y_ref = r0.clone();
    vecops::xpby(&p, -0.37, &mut y_ref);
    let d_ref = vecops::dot(&y_ref, &w);

    for t in [1usize, 2, 4, 8] {
        par::set_max_threads(t);
        let mut u = u0.clone();
        let mut r = r0.clone();
        let norms = vecops::fused_axpy_axpy_norm(alpha, &p, &kp, &mut u, &mut r);
        assert_eq!(bits(&u), bits(&u_ref), "fused u, t = {t}");
        assert_eq!(bits(&r), bits(&r_ref), "fused r, t = {t}");
        assert_eq!(norms.p_norm_inf.to_bits(), p_norm_ref.to_bits(), "t = {t}");
        assert_eq!(norms.r_norm_inf.to_bits(), r_norm_ref.to_bits(), "t = {t}");
        assert_eq!(
            vecops::norm2_with_max(&r, norms.r_norm_inf).to_bits(),
            r2_ref.to_bits(),
            "fused norm2, t = {t}"
        );
        let mut y = r0.clone();
        let d = vecops::fused_xpby_dot(&p, -0.37, &mut y, &w);
        assert_eq!(bits(&y), bits(&y_ref), "fused xpby, t = {t}");
        assert_eq!(d.to_bits(), d_ref.to_bits(), "fused dot, t = {t}");
    }
    par::set_max_threads(before);
}

/// The batched multi-RHS solver must reproduce the standalone solves
/// bitwise for every thread count — in both parallel regimes it selects.
#[test]
fn multi_rhs_batch_bitwise_across_thread_counts() {
    let _guard = sweep_lock();
    let (matrix, colors, rhs) = ordered_poisson(48); // small: RHS-level regime
    let n = matrix.rows();
    let pre = MStepSsorPreconditioner::unparametrized(&matrix, &colors, 2).unwrap();
    let opts = PcgOptions {
        tol: 1e-9,
        ..Default::default()
    };
    let nrhs = 6;
    let f: Vec<f64> = (0..nrhs)
        .flat_map(|j| rhs.iter().map(move |v| v * (1.0 + 0.25 * j as f64)))
        .collect();

    let before = par::max_threads();
    par::set_max_threads(1);
    let mut ws1 = MultiRhsWorkspace::new(n, nrhs);
    let mut u1 = vec![0.0; nrhs * n];
    pcg_solve_multi(&matrix, &f, &mut u1, &pre, &opts, &mut ws1).unwrap();
    for t in [2usize, 4, 8] {
        par::set_max_threads(t);
        let mut ws = MultiRhsWorkspace::new(n, nrhs);
        let mut u = vec![0.0; nrhs * n];
        pcg_solve_multi(&matrix, &f, &mut u, &pre, &opts, &mut ws).unwrap();
        assert_eq!(bits(&u1), bits(&u), "multi-RHS batch differs at t = {t}");
    }
    par::set_max_threads(before);
}

#[test]
fn spmv_and_ssor_sweeps_bitwise_across_thread_counts() {
    let _guard = sweep_lock();
    let (matrix, colors, rhs) = ordered_poisson(192); // 36 864 unknowns
    let ssor = MulticolorSsor::new(matrix.clone(), colors, 1.0).unwrap();
    let alphas = [1.0, 0.8, 1.1];

    let before = par::max_threads();
    par::set_max_threads(1);
    let spmv1 = matrix.mul_vec(&rhs);
    let mut z1 = vec![0.0; matrix.rows()];
    ssor.msolve(&alphas, &rhs, &mut z1);

    for t in [2usize, 4, 8] {
        par::set_max_threads(t);
        assert_eq!(bits(&spmv1), bits(&matrix.mul_vec(&rhs)), "spmv, t = {t}");
        let mut zt = vec![0.0; matrix.rows()];
        ssor.msolve(&alphas, &rhs, &mut zt);
        assert_eq!(bits(&z1), bits(&zt), "msolve, t = {t}");
    }
    par::set_max_threads(before);
}

/// The cross-format leg of the determinism contract: replaying the full
/// m-step SSOR PCG solve through SELL-C-σ — operator *and* preconditioner
/// built from the SELL form — must reproduce the CSR run bitwise, at every
/// thread count. This is what makes the storage format a pure performance
/// decision.
#[test]
fn full_pcg_solve_bitwise_under_both_formats() {
    let _guard = sweep_lock();
    let (matrix, colors, rhs) = ordered_poisson(128);
    let sell = SellCsMatrix::from_csr_default(&matrix);
    let pre_csr = MStepSsorPreconditioner::unparametrized(&matrix, &colors, 2).unwrap();
    let pre_sell = MStepSsorPreconditioner::unparametrized_op(&sell, &colors, 2).unwrap();
    let opts = PcgOptions {
        tol: 1e-8,
        ..Default::default()
    };
    let n = matrix.rows();

    let before = par::max_threads();
    for t in [1usize, 2, 4, 8] {
        par::set_max_threads(t);
        let mut ws = PcgWorkspace::new(n);
        let mut u_csr = vec![0.0; n];
        let rep_csr = pcg_solve_into(&matrix, &rhs, &mut u_csr, &pre_csr, &opts, &mut ws).unwrap();
        let mut u_sell = vec![0.0; n];
        let rep_sell = pcg_solve_into(&sell, &rhs, &mut u_sell, &pre_sell, &opts, &mut ws).unwrap();
        assert_eq!(
            rep_csr.iterations, rep_sell.iterations,
            "iters differ, t = {t}"
        );
        assert_eq!(
            rep_csr.final_relative_residual.to_bits(),
            rep_sell.final_relative_residual.to_bits(),
            "residual differs, t = {t}"
        );
        assert_eq!(bits(&u_csr), bits(&u_sell), "solution differs, t = {t}");

        // The batched multi-RHS path accepts the SELL operator too.
        let mut f = rhs.clone();
        f.extend_from_slice(&rhs);
        let mut ub_csr = vec![0.0; 2 * n];
        let mut ub_sell = vec![0.0; 2 * n];
        let mut mws = MultiRhsWorkspace::new(n, 2);
        pcg_solve_multi(&matrix, &f, &mut ub_csr, &pre_csr, &opts, &mut mws).unwrap();
        pcg_solve_multi(&sell, &f, &mut ub_sell, &pre_sell, &opts, &mut mws).unwrap();
        assert_eq!(bits(&ub_csr), bits(&ub_sell), "multi-RHS differs, t = {t}");
    }
    par::set_max_threads(before);
}

/// `AutoOp` is the env-sensitive dispatcher: under
/// `MSPCG_FORCE_FORMAT=sellcs` (the CI override job) this whole test file
/// exercises the SELL path through the solver stack; the result must be
/// bitwise identical to the explicit CSR run either way.
#[test]
fn auto_format_solve_matches_csr_bitwise() {
    let _guard = sweep_lock();
    let (matrix, colors, rhs) = ordered_poisson(96);
    let auto = AutoOp::from_csr(matrix.clone());
    let pre_csr = MStepSsorPreconditioner::unparametrized(&matrix, &colors, 2).unwrap();
    let pre_auto = MStepSsorPreconditioner::unparametrized_op(&auto, &colors, 2).unwrap();
    let opts = PcgOptions {
        tol: 1e-9,
        ..Default::default()
    };
    let n = matrix.rows();
    let mut ws = PcgWorkspace::new(n);
    let mut u_csr = vec![0.0; n];
    pcg_solve_into(&matrix, &rhs, &mut u_csr, &pre_csr, &opts, &mut ws).unwrap();
    let mut u_auto = vec![0.0; n];
    pcg_solve_into(&auto, &rhs, &mut u_auto, &pre_auto, &opts, &mut ws).unwrap();
    assert_eq!(
        bits(&u_csr),
        bits(&u_auto),
        "AutoOp ({:?}) solve differs from CSR",
        auto.format()
    );
}

#[test]
fn full_pcg_solve_bitwise_across_thread_counts() {
    let _guard = sweep_lock();
    let (matrix, colors, rhs) = ordered_poisson(128); // 16 384 unknowns
    let pre = MStepSsorPreconditioner::unparametrized(&matrix, &colors, 2).unwrap();
    let opts = PcgOptions {
        tol: 1e-8,
        ..Default::default()
    };

    let mut ws = PcgWorkspace::new(matrix.rows());
    let solve = |ws: &mut PcgWorkspace| {
        let mut u = vec![0.0; matrix.rows()];
        let rep = pcg_solve_into(&matrix, &rhs, &mut u, &pre, &opts, ws).unwrap();
        (u, rep.iterations)
    };

    let before = par::max_threads();
    par::set_max_threads(1);
    let (u1, it1) = solve(&mut ws);
    for t in [2usize, 4, 8] {
        par::set_max_threads(t);
        let (ut, itt) = solve(&mut ws);
        assert_eq!(it1, itt, "iteration count differs at t = {t}");
        assert_eq!(bits(&u1), bits(&ut), "solution differs at t = {t}");
    }
    par::set_max_threads(before);
}
