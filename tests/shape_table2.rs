//! Integration test: the qualitative shape of the paper's Table 2 must
//! hold on the plate problem — iterations drop steeply from m = 0 to
//! m = 1, decrease monotonically (weakly) in m, and the parametrized
//! preconditioner beats the unparametrized one at equal m.

use mspcg::core::mstep::MStepSsorPreconditioner;
use mspcg::core::pcg::{cg_solve, pcg_solve, PcgOptions};
use mspcg::fem::plate::PlaneStressProblem;

fn iterations_for(a: usize, m: usize, parametrized: bool) -> usize {
    let asm = PlaneStressProblem::unit_square(a).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let opts = PcgOptions {
        tol: 1e-6,
        ..Default::default()
    };
    if m == 0 {
        return cg_solve(&ord.matrix, &ord.rhs, &opts).unwrap().iterations;
    }
    let pre = if parametrized {
        MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, m).unwrap()
    } else {
        MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m).unwrap()
    };
    pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts)
        .unwrap()
        .iterations
}

#[test]
fn table2_shape_small_plate() {
    let a = 20;
    let n0 = iterations_for(a, 0, false);
    let n1 = iterations_for(a, 1, false);
    let n2 = iterations_for(a, 2, false);
    let n3 = iterations_for(a, 3, false);
    let n2p = iterations_for(a, 2, true);
    let n3p = iterations_for(a, 3, true);
    println!("a={a}: m=0:{n0} m=1:{n1} m=2:{n2} m=3:{n3} m=2P:{n2p} m=3P:{n3p}");
    // Paper (a = 20): 271, 111, 77, 61 with 2P = 71?, 3P = 31-ish (OCR).
    // Shape requirements:
    assert!(n1 * 2 < n0, "m=1 must at least halve CG iterations");
    assert!(n2 < n1 && n3 < n2, "unparametrized monotone decrease");
    assert!(n2p <= n2, "parametrized must not lose at m=2");
    assert!(n3p <= n3, "parametrized must not lose at m=3");
}
