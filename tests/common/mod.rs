//! Shared helpers for the integration-test binaries.
//!
//! Each file under `tests/` compiles as its own crate, so this module is
//! pulled in per binary via `mod common;` — one implementation of the
//! deterministic xorshift generator instead of a drifting copy per test.

// Each test binary uses a subset of the helpers; the unused remainder is
// expected, not dead weight to warn about.
#![allow(dead_code)]

/// Deterministic xorshift64 stream (the in-repo property-test generator).
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `lo..hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}
