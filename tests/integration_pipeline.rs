//! Cross-crate integration: FEM assembly → multicolor ordering → m-step
//! PCG → solution, validated against dense direct solves and against each
//! other across orderings and preconditioners.

use mspcg::core::mstep::{MStepJacobiPreconditioner, MStepSsorPreconditioner};
use mspcg::core::pcg::{cg_solve, pcg_solve, PcgOptions, StoppingCriterion};
use mspcg::core::preconditioner::Preconditioner;
use mspcg::core::splitting::{NaturalSsorSplitting, Splitting};
use mspcg::fem::plate::PlaneStressProblem;
use mspcg::sparse::{vecops, PcgVariant};

fn opts(tol: f64) -> PcgOptions {
    PcgOptions {
        tol,
        criterion: StoppingCriterion::RelativeResidual,
        ..Default::default()
    }
}

#[test]
fn all_preconditioners_reach_the_same_solution() {
    let asm = PlaneStressProblem::unit_square(8).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let exact = ord.matrix.to_dense().cholesky().unwrap().solve(&ord.rhs);
    let o = opts(1e-12);

    let mut solutions = Vec::new();
    solutions.push(("cg", cg_solve(&ord.matrix, &ord.rhs, &o).unwrap().x));
    for m in [1usize, 2, 4] {
        let pre = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m).unwrap();
        solutions.push((
            "ssor",
            pcg_solve(&ord.matrix, &ord.rhs, &pre, &o).unwrap().x,
        ));
    }
    for m in [2usize, 3] {
        let pre = MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, m).unwrap();
        solutions.push((
            "ssorP",
            pcg_solve(&ord.matrix, &ord.rhs, &pre, &o).unwrap().x,
        ));
    }
    // Truncated Neumann (Jacobi) only with odd m: for this matrix
    // λ_max(D⁻¹K) > 2, so even-m Neumann is indefinite — the
    // Dubois–Greenbaum–Rodrigue caveat (§2.1). PCG's breakdown guard
    // detects that; `even_neumann_is_rejected_as_indefinite` below pins it.
    for m in [1usize, 3] {
        let jac = MStepJacobiPreconditioner::neumann(&ord.matrix, m).unwrap();
        solutions.push((
            "jacobi",
            pcg_solve(&ord.matrix, &ord.rhs, &jac, &o).unwrap().x,
        ));
    }
    for (name, x) in &solutions {
        let err = x
            .iter()
            .zip(&exact)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-7, "{name}: error {err}");
    }
}

#[test]
fn even_neumann_is_rejected_as_indefinite() {
    // λ_max(D⁻¹K) > 2 for the plate stiffness matrix, so the 2-step
    // truncated Neumann preconditioner is indefinite; the solver must
    // report it as a typed error rather than silently diverge.
    let asm = PlaneStressProblem::unit_square(8).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let jac = MStepJacobiPreconditioner::neumann(&ord.matrix, 2).unwrap();
    let err = pcg_solve(&ord.matrix, &ord.rhs, &jac, &opts(1e-10));
    assert!(
        matches!(
            err,
            Err(mspcg::sparse::SparseError::NotPositiveDefinite { .. })
        ),
        "expected indefiniteness detection, got {err:?}"
    );
    // The parametrized constructor refuses to build it in the first place
    // (SPD margin check): either an error, or a positive-margin fit.
    if let Ok(pre) = MStepJacobiPreconditioner::parametrized_jacobi(&ord.matrix, 2) {
        let sol = pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts(1e-10)).unwrap();
        assert!(sol.converged);
    }
}

#[test]
fn ordering_does_not_change_the_physics() {
    // Solve in the natural ordering with natural SSOR, and in the
    // multicolor ordering with multicolor SSOR; map back and compare.
    let asm = PlaneStressProblem::unit_square(7).assemble().unwrap();
    let o = opts(1e-12);

    // Natural ordering path.
    let nat_split = NaturalSsorSplitting::new(&asm.matrix, 1.0).unwrap();
    struct NatPre(NaturalSsorSplitting);
    impl Preconditioner for NatPre {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn apply(&self, r: &[f64], z: &mut [f64]) {
            self.0.msolve(&[1.0, 1.0], r, z);
        }
    }
    let nat = pcg_solve(&asm.matrix, &asm.rhs, &NatPre(nat_split), &o).unwrap();

    // Multicolor path.
    let ord = asm.multicolor().unwrap();
    let pre = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, 2).unwrap();
    let mc = pcg_solve(&ord.matrix, &ord.rhs, &pre, &o).unwrap();
    let mc_nodal = ord.to_nodal(&mc.x);

    for (u, v) in nat.x.iter().zip(&mc_nodal) {
        assert!((u - v).abs() < 1e-7, "{u} vs {v}");
    }
}

#[test]
fn residual_actually_drops_below_tolerance() {
    let asm = PlaneStressProblem::unit_square(10).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let pre = MStepSsorPreconditioner::parametrized(&ord.matrix, &ord.colors, 3).unwrap();
    let sol = pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts(1e-10)).unwrap();
    // Independent residual check: ‖f − K x‖ / ‖f‖.
    let mut r = ord.rhs.clone();
    ord.matrix.mul_vec_axpy(-1.0, &sol.x, &mut r);
    let rel = vecops::norm2(&r) / vecops::norm2(&ord.rhs);
    assert!(rel < 1e-9, "claimed converged but residual is {rel}");
    assert!((rel - sol.final_relative_residual).abs() < 1e-12);
}

#[test]
fn displacement_and_residual_criteria_agree_on_the_solution() {
    let asm = PlaneStressProblem::unit_square(9).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let pre = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, 2).unwrap();
    let by_change = pcg_solve(
        &ord.matrix,
        &ord.rhs,
        &pre,
        &PcgOptions {
            tol: 1e-9,
            criterion: StoppingCriterion::DisplacementChange,
            ..Default::default()
        },
    )
    .unwrap();
    let by_resid = pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts(1e-10)).unwrap();
    for (u, v) in by_change.x.iter().zip(&by_resid.x) {
        assert!((u - v).abs() < 1e-6);
    }
}

#[test]
fn larger_plates_need_more_iterations_without_preconditioning() {
    // κ(K) grows like h⁻², so CG iterations grow with a.
    let iters = |a: usize| {
        let asm = PlaneStressProblem::unit_square(a).assemble().unwrap();
        let ord = asm.multicolor().unwrap();
        cg_solve(&ord.matrix, &ord.rhs, &opts(1e-8))
            .unwrap()
            .iterations
    };
    let i6 = iters(6);
    let i12 = iters(12);
    let i18 = iters(18);
    assert!(i12 > i6 && i18 > i12, "{i6}, {i12}, {i18}");
}

#[test]
fn preconditioner_applications_match_iteration_count() {
    let asm = PlaneStressProblem::unit_square(8).assemble().unwrap();
    let ord = asm.multicolor().unwrap();
    let m = 3usize;
    let pre = MStepSsorPreconditioner::unparametrized(&ord.matrix, &ord.colors, m).unwrap();
    let sol = pcg_solve(&ord.matrix, &ord.rhs, &pre, &opts(1e-8)).unwrap();
    // One application per iteration plus the initial one (±1 at the
    // convergence boundary), each of m steps. The s-step schedule builds
    // its whole s-vector Chebyshev basis up front (one application per
    // basis vector), so a block that converges mid-way leaves up to
    // `s − 1` applications beyond the counted iterations.
    let slack = match PcgVariant::Auto.resolve() {
        PcgVariant::SStep { s } => s + 1,
        _ => 2,
    };
    let apps = sol.stats.precond_applications;
    assert!(
        apps >= sol.iterations && apps <= sol.iterations + slack,
        "{apps} applications over {} iterations",
        sol.iterations
    );
    assert_eq!(sol.stats.precond_steps, apps * m);
}
